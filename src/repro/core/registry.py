"""String-keyed registry of every mechanism this repo implements.

One dispatch surface for the comparative evaluation: experiments, the
edge platform, and the CLI all resolve mechanisms by name instead of
importing runners ad hoc, so a new mechanism plugs in by registering a
:class:`MechanismSpec` — no call-site edits.

Specs carry the economics metadata the paper's comparison tables need
(truthfulness, individual rationality, completeness, payment rule, the
paper reference) alongside a lazy loader, so importing this module stays
cheap and free of core ↔ baselines import cycles.

Kinds
-----
``single``
    One round: callable ``WSPInstance → AuctionOutcome`` (the
    :class:`~repro.core.mechanism.Mechanism` protocol).  Any single
    mechanism can also drive the multi-round loop via :func:`make_online`.
``online``
    Stateful per-round (the :class:`~repro.core.mechanism.OnlineMechanism`
    protocol); :func:`get_mechanism` returns the whole-horizon convenience
    runner (``rounds, capacities → OnlineOutcome``).
``horizon``
    Clairvoyant benchmarks over a full horizon
    (``rounds, capacities → OfflineOutcome``).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "CERTIFIABLE_PROPERTIES",
    "MechanismSpec",
    "register",
    "get_spec",
    "get_mechanism",
    "list_mechanisms",
    "mechanism_specs",
    "make_online",
]


#: The economic properties :mod:`repro.verify` can certify.  A spec's
#: ``claims`` set must be a subset; the certification suite asserts every
#: claimed property PASSes and records failures of unclaimed properties
#: as *expected* (pay-as-bid failing truthfulness is a feature, not a bug).
CERTIFIABLE_PROPERTIES = frozenset({
    "monotonicity",
    "critical-payment",
    "truthfulness",
    "individual-rationality",
    "feasibility",
    "approximation",
})


@dataclass(frozen=True)
class MechanismSpec:
    """One registry entry: a mechanism's metadata plus its lazy loader.

    Attributes
    ----------
    name:
        The registry key (kebab-case).
    kind:
        ``"single"``, ``"online"``, or ``"horizon"`` (see module docs).
    summary:
        One-line description for listings.
    paper_ref:
        Where the mechanism comes from (paper section/algorithm, or the
        literature for textbook baselines).
    truthful:
        Whether truthful bidding is a dominant strategy under it.
    individually_rational:
        Whether winners are never paid below their announced price.
    complete:
        Whether it always covers full demand on feasible instances.
    payment_rule:
        Short name of the payment rule it applies.
    options:
        Keyword options its callable understands; dispatchers filter what
        they forward against this set.
    loader:
        Zero-argument callable resolving the mechanism callable; imports
        live inside it so registration never pulls heavy modules.
    claims:
        Which :data:`CERTIFIABLE_PROPERTIES` the mechanism is *expected*
        to satisfy.  :func:`repro.verify.certify` asserts every claimed
        property holds on generated instances, and reports failures of
        unclaimed properties as expected (both directions are checked).
    """

    name: str
    kind: str
    summary: str
    paper_ref: str
    truthful: bool
    individually_rational: bool
    complete: bool
    payment_rule: str
    loader: Callable[[], Callable[..., Any]]
    options: frozenset[str] = field(default_factory=frozenset)
    claims: frozenset[str] = field(default_factory=frozenset)


_REGISTRY: dict[str, MechanismSpec] = {}


def register(spec: MechanismSpec) -> MechanismSpec:
    """Add a spec to the registry (rejects duplicate names)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(
            f"mechanism {spec.name!r} is already registered"
        )
    if spec.kind not in ("single", "online", "horizon"):
        raise ConfigurationError(
            f"mechanism kind must be 'single', 'online' or 'horizon', "
            f"got {spec.kind!r}"
        )
    unknown_claims = set(spec.claims) - CERTIFIABLE_PROPERTIES
    if unknown_claims:
        raise ConfigurationError(
            f"mechanism {spec.name!r} claims unknown properties "
            f"{sorted(unknown_claims)}; certifiable: "
            f"{sorted(CERTIFIABLE_PROPERTIES)}"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> MechanismSpec:
    """Look up a spec by name (ConfigurationError on unknown names)."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown mechanism {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    return spec


def get_mechanism(name: str) -> Callable[..., Any]:
    """Resolve a mechanism callable by registry name.

    ``single`` mechanisms map one :class:`~repro.core.wsp.WSPInstance` to
    an :class:`~repro.core.outcomes.AuctionOutcome`; ``online`` and
    ``horizon`` mechanisms map ``(rounds, capacities)`` to their horizon
    outcome.
    """
    return get_spec(name).loader()


def list_mechanisms(kind: str | None = None) -> list[str]:
    """Registered mechanism names (optionally restricted to one kind)."""
    return [spec.name for spec in mechanism_specs(kind)]


def mechanism_specs(kind: str | None = None) -> list[MechanismSpec]:
    """Registered specs sorted by name (optionally one kind only)."""
    return sorted(
        (
            spec
            for spec in _REGISTRY.values()
            if kind is None or spec.kind == kind
        ),
        key=lambda spec: spec.name,
    )


def make_online(
    name: str,
    capacities: Mapping[int, int],
    *,
    on_infeasible: str = "raise",
    faults=None,
    resilience=None,
    **options: Any,
):
    """Build an :class:`~repro.core.mechanism.OnlineMechanism` by name.

    ``online`` mechanisms construct their native auctioneer; ``single``
    mechanisms are wrapped in a
    :class:`~repro.core.mechanism.SingleRoundOnlineAdapter` so any
    baseline can drive the multi-round platform loop under MSOA's
    capacity discipline.  Unknown keyword options (per the spec's
    ``options`` set) are rejected up front.

    ``faults`` (a :class:`~repro.faults.models.FaultPlan`) and
    ``resilience`` (a :class:`~repro.faults.policies.ResiliencePolicy`)
    activate fault injection and recovery uniformly across every
    mechanism kind — this shared keyword surface is what the resilience
    benchmark sweeps to compare SSAM against the baseline adapters under
    identical fault trajectories.
    """
    spec = get_spec(name)
    unknown = set(options) - set(spec.options)
    if unknown:
        raise ConfigurationError(
            f"mechanism {name!r} does not accept options "
            f"{sorted(unknown)}; accepted: {sorted(spec.options)}"
        )
    if spec.kind == "online":
        from repro.core.msoa import MultiStageOnlineAuction

        return MultiStageOnlineAuction(
            capacities,
            on_infeasible=on_infeasible,
            faults=faults,
            resilience=resilience,
            **options,
        )
    if spec.kind != "single":
        raise ConfigurationError(
            f"mechanism {name!r} is a {spec.kind} benchmark and cannot "
            "run as an online mechanism"
        )
    from repro.core.mechanism import SingleRoundOnlineAdapter

    return SingleRoundOnlineAdapter(
        spec.loader(),
        capacities,
        name=name,
        payment_rule=spec.payment_rule,
        on_infeasible=on_infeasible,
        options=options,
        faults=faults,
        resilience=resilience,
    )


# ----------------------------------------------------------------------
# built-in entries
# ----------------------------------------------------------------------
def _load_ssam():
    from repro.core.ssam import run_ssam

    return run_ssam


def _load_ssam_reference():
    import dataclasses

    from repro.core.ssam import run_ssam

    def run_ssam_reference(instance, **options):
        outcome = run_ssam(instance, engine="reference", **options)
        return dataclasses.replace(outcome, mechanism="ssam-reference")

    return run_ssam_reference


def _load_vcg():
    from repro.baselines.vcg import run_vcg

    return run_vcg


def _load_pay_as_bid():
    from repro.baselines.pay_as_bid import run_pay_as_bid

    return run_pay_as_bid


def _load_posted_price():
    from repro.baselines.fixed_pricing import run_posted_price

    def run_posted(instance, *, unit_price=None, **options):
        if unit_price is None:
            # Default to the public ceiling: the generous end of the
            # baseline (most likely to clear the market).
            unit_price = instance.effective_ceiling
        return run_posted_price(instance, unit_price=unit_price, **options)

    return run_posted


def _load_random():
    import numpy as np

    from repro.baselines.random_mechanism import run_random_selection

    def run_random(instance, *, rng=None, seed=0):
        if rng is None:
            rng = np.random.default_rng(seed)
        return run_random_selection(instance, rng)

    return run_random


def _load_greedy(variant: str):
    def load():
        from repro.baselines.greedy_variants import run_greedy_variant

        def run_variant(instance, **options):
            return run_greedy_variant(instance, variant=variant, **options)

        return run_variant

    return load


def _load_msoa():
    from repro.core.msoa import run_msoa

    return run_msoa


def _load_offline_milp():
    from repro.baselines.offline import run_offline_optimal

    return run_offline_optimal


def _load_offline_greedy():
    from repro.baselines.offline import run_offline_greedy

    return run_offline_greedy


register(MechanismSpec(
    name="ssam",
    kind="single",
    summary="single-stage auction mechanism (primal-dual greedy, fast engine)",
    paper_ref="Algorithm 1, Theorems 2-6",
    truthful=True,
    individually_rational=True,
    complete=True,
    payment_rule="critical-value",
    loader=_load_ssam,
    options=frozenset({"payment_rule", "parallelism", "guard", "engine"}),
    claims=CERTIFIABLE_PROPERTIES,
))
register(MechanismSpec(
    name="ssam-reference",
    kind="single",
    summary="SSAM on the naive reference engine (correctness oracle)",
    paper_ref="Algorithm 1 (paper-literal loop)",
    truthful=True,
    individually_rational=True,
    complete=True,
    payment_rule="critical-value",
    loader=_load_ssam_reference,
    options=frozenset({"payment_rule", "parallelism", "guard"}),
    claims=CERTIFIABLE_PROPERTIES,
))
register(MechanismSpec(
    name="vcg",
    kind="single",
    summary="exact optimum with Clarke-pivot payments (gold standard)",
    paper_ref="Vickrey-Clarke-Groves over ILP (12)-(15)",
    truthful=True,
    individually_rational=True,
    complete=True,
    payment_rule="clarke-pivot",
    loader=_load_vcg,
    # Clarke-pivot payments are computed against the whole *seller*'s
    # removal, not one bid's price axis, so the per-bid bisection oracle
    # does not apply (critical-payment deliberately unclaimed).
    claims=frozenset({
        "monotonicity", "truthfulness", "individual-rationality",
        "feasibility", "approximation",
    }),
))
register(MechanismSpec(
    name="pay-as-bid",
    kind="single",
    summary="SSAM's greedy allocation, winners paid their announced price",
    paper_ref="payment-rule ablation (Fig. 3(b) context)",
    truthful=False,
    individually_rational=True,
    complete=True,
    payment_rule="pay-as-bid",
    loader=_load_pay_as_bid,
    options=frozenset({"engine"}),
    # Same monotone allocation as SSAM, but paying announced prices is
    # manipulable: truthfulness and critical payments are *expected* to
    # fail, and the certification suite records exactly that.
    claims=frozenset({
        "monotonicity", "individual-rationality", "feasibility",
    }),
))
register(MechanismSpec(
    name="posted-price",
    kind="single",
    summary="flat per-unit repurchasing price (the introduction's strawman)",
    paper_ref="Section I ('pricing' alternative)",
    truthful=True,
    individually_rational=False,
    complete=False,
    payment_rule="posted-price",
    loader=_load_posted_price,
    options=frozenset({"unit_price"}),
    # Selection keys off true per-unit cost, never the announced price,
    # so misreports are inert (truthful, monotone) — but the flat price
    # can under-cover demand and underpay high-price bids.
    claims=frozenset({"monotonicity", "truthfulness"}),
))
register(MechanismSpec(
    name="random",
    kind="single",
    summary="random feasible cover (sanity floor), pay-as-bid payments",
    paper_ref="comparison-band floor (not in the paper)",
    truthful=False,
    individually_rational=True,
    # No feasibility guard: a bad shuffle can strand a coverable buyer.
    complete=False,
    payment_rule="pay-as-bid",
    loader=_load_random,
    options=frozenset({"rng", "seed"}),
    # Selection is price-blind (a seeded shuffle), so re-pricing a bid
    # never costs it the win; payments equal announced prices.
    claims=frozenset({"monotonicity", "individual-rationality"}),
))
for _variant, _summary in (
    ("density", "SSAM's ranking key (reproduces its allocation)"),
    ("cheapest_price", "cheapest-announced-price-first ranking"),
    ("largest_coverage", "largest-marginal-coverage-first ranking"),
):
    register(MechanismSpec(
        name=f"greedy-{_variant.replace('_', '-')}",
        kind="single",
        summary=f"greedy cover, {_summary}",
        paper_ref="selection-rule ablation (Fig. 5(a)/6 context)",
        truthful=False,
        individually_rational=True,
        complete=True,
        payment_rule="pay-as-bid",
        loader=_load_greedy(_variant),
        # Every ranking key is non-increasing in the bid's own price, so
        # allocation stays monotone; pay-as-bid payments break
        # truthfulness exactly as they do for the pay-as-bid entry.
        claims=frozenset({
            "monotonicity", "individual-rationality", "feasibility",
        }),
    ))
register(MechanismSpec(
    name="msoa",
    kind="online",
    summary="multi-stage online auction (scarcity-priced per-round SSAM)",
    paper_ref="Algorithm 2, Theorem 7",
    truthful=True,
    individually_rational=True,
    complete=True,
    payment_rule="critical-value",
    loader=_load_msoa,
    options=frozenset({
        "alpha", "payment_rule", "parallelism", "guard", "engine",
        "faults", "resilience",
    }),
    # Online certification drives whole horizons: per-round coverage plus
    # capacity discipline (feasibility) and per-round IR are checkable;
    # the single-round counterfactual probes are not (round t's scaled
    # prices depend on rounds < t).
    claims=frozenset({"individual-rationality", "feasibility"}),
))
register(MechanismSpec(
    name="offline-milp",
    kind="horizon",
    summary="clairvoyant horizon optimum, ILP (7)-(11) via MILP",
    paper_ref="Definition 6 (competitive-ratio denominator)",
    truthful=False,
    individually_rational=False,
    complete=True,
    payment_rule="none (cost benchmark)",
    loader=_load_offline_milp,
))
register(MechanismSpec(
    name="offline-greedy",
    kind="horizon",
    summary="cheap clairvoyant upper bound (greedy at face prices)",
    paper_ref="offline heuristic for large sweeps (not in the paper)",
    truthful=False,
    individually_rational=False,
    complete=True,
    payment_rule="none (cost benchmark)",
    loader=_load_offline_greedy,
))
