"""The winner-selection problem (WSP) — the paper's ILP (12)–(15).

A :class:`WSPInstance` is one round of the auction: a set of bids and a
per-buyer integer demand vector.  The objective is to pick winning bids of
minimum total price such that

* every buyer ``b`` receives at least ``demand[b]`` coverage units
  (constraint 13 — generalized set multicover),
* each seller wins at most one bid (constraint 14),
* decisions are binary (constraint 15).

The instance also exposes the constraint matrices of the LP relaxation so
the exact solvers (:mod:`repro.solvers`) and the dual bookkeeping
(:mod:`repro.core.duals`) share a single source of truth for the
formulation.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.bids import Bid, group_bids_by_seller, validate_bids
from repro.errors import ConfigurationError, InfeasibleInstanceError

__all__ = ["WSPInstance", "CoverageState", "ActiveBidIndex"]


@dataclass(frozen=True)
class WSPInstance:
    """One round's winner-selection problem.

    Attributes
    ----------
    bids:
        All submitted bids (already validated; see :func:`from_bids`).
    demand:
        Mapping from buyer microservice id to its required coverage units
        (the per-buyer decomposition of the round's aggregate demand
        ``Xᵗ``).  Buyers with zero demand are allowed and simply ignored.
    price_ceiling:
        The publicly known maximum admissible per-unit price.  It caps
        critical payments when a winner faces no competition (a monopolist
        seller).  ``None`` defaults to the maximum announced bid price.
    """

    bids: tuple[Bid, ...]
    demand: Mapping[int, int]
    price_ceiling: float | None = None

    @staticmethod
    def from_bids(
        bids: Iterable[Bid],
        demand: Mapping[int, int],
        price_ceiling: float | None = None,
    ) -> "WSPInstance":
        """Validate inputs and build an instance.

        Raises :class:`~repro.errors.ConfigurationError` on malformed input
        (negative demand, duplicate bid keys, unknown buyers, ...).
        """
        for buyer, units in demand.items():
            if units < 0:
                raise ConfigurationError(
                    f"buyer {buyer} has negative demand {units}"
                )
            if int(units) != units:
                raise ConfigurationError(
                    f"buyer {buyer} demand must be integral, got {units}"
                )
        validated = validate_bids(bids, demand)
        if price_ceiling is not None and price_ceiling <= 0:
            raise ConfigurationError(
                f"price_ceiling must be positive, got {price_ceiling}"
            )
        return WSPInstance(
            bids=validated,
            demand={int(b): int(u) for b, u in demand.items()},
            price_ceiling=price_ceiling,
        )

    # ------------------------------------------------------------------
    # basic views
    # ------------------------------------------------------------------
    @property
    def buyers(self) -> tuple[int, ...]:
        """Buyers with positive demand, in sorted order."""
        return tuple(sorted(b for b, u in self.demand.items() if u > 0))

    @property
    def sellers(self) -> tuple[int, ...]:
        """Distinct sellers appearing among the bids, in sorted order."""
        return tuple(sorted({bid.seller for bid in self.bids}))

    @property
    def total_demand(self) -> int:
        """``Σ_b demand[b]`` — the round's aggregate coverage units."""
        return sum(u for u in self.demand.values() if u > 0)

    @property
    def effective_ceiling(self) -> float:
        """The per-unit price cap actually used for monopolist payments."""
        if self.price_ceiling is not None:
            return self.price_ceiling
        if not self.bids:
            return 1.0
        return max(bid.price for bid in self.bids)

    def bids_of(self, seller: int) -> tuple[Bid, ...]:
        """All bids submitted by ``seller`` in this round."""
        return tuple(bid for bid in self.bids if bid.seller == seller)

    def without_seller(self, seller: int) -> "WSPInstance":
        """The same instance with all of ``seller``'s bids removed.

        Used by the critical-payment rule: a winner's threshold price is
        derived from the greedy run on the market without that seller.
        """
        return WSPInstance(
            bids=tuple(bid for bid in self.bids if bid.seller != seller),
            demand=self.demand,
            price_ceiling=self.price_ceiling,
        )

    def replace_bid(self, new_bid: Bid) -> "WSPInstance":
        """The same instance with the bid keyed like ``new_bid`` swapped out.

        Used by truthfulness audits to inject a unilateral price deviation.
        """
        keys = {bid.key for bid in self.bids}
        if new_bid.key not in keys:
            raise ConfigurationError(f"no existing bid with key {new_bid.key}")
        replaced = tuple(
            new_bid if bid.key == new_bid.key else bid for bid in self.bids
        )
        return WSPInstance(
            bids=replaced, demand=self.demand, price_ceiling=self.price_ceiling
        )

    def bid_by_key(self, key: tuple[int, int]) -> Bid:
        """The bid with ``(seller, index)`` key ``key`` (ConfigurationError
        if absent)."""
        for bid in self.bids:
            if bid.key == key:
                return bid
        raise ConfigurationError(f"no existing bid with key {key}")

    def perturb_bid(self, key: tuple[int, int], price: float) -> "WSPInstance":
        """The same instance with bid ``key`` re-priced at ``price``.

        The bid's private cost is pinned to its current :attr:`Bid.cost`,
        so the perturbation models a unilateral *misreport*: the economics
        audits (monotonicity probes, the critical-payment bisection oracle,
        truthfulness sweeps in :mod:`repro.verify`) all edit instances
        through this one helper.
        """
        return self.replace_bid(self.bid_by_key(key).with_price(price))

    def restrict_seller_to(self, key: tuple[int, int]) -> "WSPInstance":
        """Drop the keyed bid's sibling alternatives (same seller).

        This is the single-parameter projection behind the paper's
        truthfulness proof (Theorem 4): with its alternative bids held
        out, a seller's strategy space collapses to the one price of bid
        ``key``, which is exactly the setting where monotone allocation
        plus critical payments imply truthfulness.  With siblings left
        in, a seller can inflate one alternative to prop up the critical
        payment of another — a menu deviation the theorem does not cover.
        """
        anchor = self.bid_by_key(key)  # validates the key exists
        return WSPInstance(
            bids=tuple(
                bid
                for bid in self.bids
                if bid.seller != anchor.seller or bid.key == key
            ),
            demand=self.demand,
            price_ceiling=self.price_ceiling,
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        return {
            "bids": [bid.to_dict() for bid in self.bids],
            "demand": {str(buyer): units for buyer, units in self.demand.items()},
            "price_ceiling": self.price_ceiling,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "WSPInstance":
        """Rebuild an instance from its :meth:`to_dict` form."""
        return WSPInstance(
            bids=tuple(Bid.from_dict(item) for item in data["bids"]),
            demand={int(buyer): int(units) for buyer, units in data["demand"].items()},
            price_ceiling=(
                float(data["price_ceiling"])
                if data.get("price_ceiling") is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # feasibility
    # ------------------------------------------------------------------
    def check_feasible(self) -> None:
        """Raise :class:`InfeasibleInstanceError` if no solution can exist.

        Because every seller wins at most one bid and a bid gives each
        covered buyer one unit, buyer ``b`` can receive at most one unit per
        *distinct seller* covering it.  Feasibility therefore requires that
        the number of distinct sellers covering ``b`` is at least
        ``demand[b]``.  This condition is also sufficient: picking, for each
        buyer in turn, bids from unused sellers is a matching problem that
        the greedy mechanism resolves (and the MILP confirms).
        """
        sellers_covering: dict[int, set[int]] = {b: set() for b in self.buyers}
        for bid in self.bids:
            for buyer in bid.covered:
                if buyer in sellers_covering:
                    sellers_covering[buyer].add(bid.seller)
        # Distinct-seller coverage per buyer is necessary.  For sufficiency
        # with overlapping seller constraints we verify via a max-flow style
        # greedy check below (sellers are shared across buyers).
        for buyer in self.buyers:
            if len(sellers_covering[buyer]) < self.demand[buyer]:
                raise InfeasibleInstanceError(
                    f"buyer {buyer} needs {self.demand[buyer]} units but only "
                    f"{len(sellers_covering[buyer])} distinct sellers cover it"
                )
        if not self._flow_feasible():
            raise InfeasibleInstanceError(
                "demand cannot be met with at most one winning bid per seller"
            )

    def _flow_feasible(self) -> bool:
        """Exact feasibility via bipartite flow (sellers → buyers).

        One winning bid per seller supplies one unit to *each* buyer it
        covers, so a seller is usable for buyer ``b`` if *some* bid of the
        seller covers ``b``.  Demand is satisfiable iff selecting one bid
        per seller can cover every buyer ``demand[b]`` times.  We check a
        relaxation first (each seller contributes its best bid per buyer)
        and fall back to exhaustive search only for tiny instances, because
        the exact question is itself the NP-hard WSP feasibility; in
        practice the distinct-seller condition plus the relaxation is tight
        for the instance families in this library.
        """
        by_seller = group_bids_by_seller(self.bids)
        # Relaxation: union of covered sets per seller (a seller could cover
        # this union only if a single bid does; check single-bid unions).
        best_cover: dict[int, int] = {b: 0 for b in self.buyers}
        for bids in by_seller.values():
            buyers_reachable: set[int] = set()
            for bid in bids:
                buyers_reachable |= bid.covered
            for buyer in buyers_reachable:
                if buyer in best_cover:
                    best_cover[buyer] += 1
        if any(best_cover[b] < self.demand[b] for b in self.buyers):
            return False
        if len(by_seller) > 16 or len(self.bids) > 20:
            return True  # rely on the necessary conditions at scale
        return self._exhaustive_feasible(by_seller)

    def _exhaustive_feasible(self, by_seller: Mapping[int, Sequence[Bid]]) -> bool:
        sellers = sorted(by_seller)

        def recurse(idx: int, coverage: dict[int, int]) -> bool:
            if all(coverage[b] >= self.demand[b] for b in self.buyers):
                return True
            if idx == len(sellers):
                return False
            remaining_possible = len(sellers) - idx
            deficit = max(
                self.demand[b] - coverage[b] for b in self.buyers
            ) if self.buyers else 0
            if deficit > remaining_possible:
                return False
            seller = sellers[idx]
            for bid in by_seller[seller]:
                updated = dict(coverage)
                for buyer in bid.covered:
                    if buyer in updated:
                        updated[buyer] += 1
                if recurse(idx + 1, updated):
                    return True
            return recurse(idx + 1, coverage)

        return recurse(0, {b: 0 for b in self.buyers})

    def is_feasible(self) -> bool:
        """Boolean wrapper around :meth:`check_feasible`."""
        try:
            self.check_feasible()
        except InfeasibleInstanceError:
            return False
        return True

    # ------------------------------------------------------------------
    # LP / ILP matrix forms (shared by solvers and dual bookkeeping)
    # ------------------------------------------------------------------
    def constraint_matrices(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(c, A_cover, b_cover, A_seller, b_seller)``.

        * ``c`` — objective coefficients (bid prices), one per bid, in
          :attr:`bids` order.
        * ``A_cover @ x >= b_cover`` — per-buyer coverage constraints (13).
        * ``A_seller @ x <= b_seller`` — per-seller at-most-one constraints
          (14).
        """
        n = len(self.bids)
        buyers = self.buyers
        sellers = self.sellers
        c = np.array([bid.price for bid in self.bids], dtype=float)
        a_cover = np.zeros((len(buyers), n))
        buyer_row = {b: r for r, b in enumerate(buyers)}
        for col, bid in enumerate(self.bids):
            for buyer in bid.covered:
                row = buyer_row.get(buyer)
                if row is not None:
                    a_cover[row, col] = 1.0
        b_cover = np.array([self.demand[b] for b in buyers], dtype=float)
        a_seller = np.zeros((len(sellers), n))
        seller_row = {s: r for r, s in enumerate(sellers)}
        for col, bid in enumerate(self.bids):
            a_seller[seller_row[bid.seller], col] = 1.0
        b_seller = np.ones(len(sellers))
        return c, a_cover, b_cover, a_seller, b_seller

    def solution_cost(self, chosen: Iterable[Bid]) -> float:
        """Total announced price of a set of bids (the social cost)."""
        return float(sum(bid.price for bid in chosen))

    def verify_solution(self, chosen: Sequence[Bid]) -> None:
        """Assert that ``chosen`` is primal feasible; raise otherwise."""
        keys = [bid.key for bid in chosen]
        if len(set(keys)) != len(keys):
            raise InfeasibleInstanceError("a bid was selected twice")
        sellers = [bid.seller for bid in chosen]
        if len(set(sellers)) != len(sellers):
            raise InfeasibleInstanceError("a seller won more than one bid")
        coverage = {b: 0 for b in self.buyers}
        for bid in chosen:
            for buyer in bid.covered:
                if buyer in coverage:
                    coverage[buyer] += 1
        for buyer in self.buyers:
            if coverage[buyer] < self.demand[buyer]:
                raise InfeasibleInstanceError(
                    f"buyer {buyer} covered {coverage[buyer]} < demand "
                    f"{self.demand[buyer]}"
                )


@dataclass
class CoverageState:
    """Mutable coverage bookkeeping shared by the greedy mechanisms.

    Tracks, per buyer, how many units have been granted so far, and exposes
    the marginal-utility function ``Uᵢⱼ(𝔼ᵗ)`` of the paper (Eq. 19): the
    number of covered buyers whose demand is still unmet.
    """

    demand: Mapping[int, int]
    granted: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for buyer in self.demand:
            self.granted.setdefault(buyer, 0)

    def utility_of(self, bid: Bid) -> int:
        """Marginal units this bid would contribute right now."""
        return sum(
            1
            for buyer in bid.covered
            if self.granted.get(buyer, 0) < self.demand.get(buyer, 0)
        )

    def apply(self, bid: Bid) -> int:
        """Grant the bid's coverage; return the marginal units contributed."""
        gained = 0
        for buyer in bid.covered:
            if buyer in self.granted:
                if self.granted[buyer] < self.demand.get(buyer, 0):
                    gained += 1
                self.granted[buyer] += 1
        return gained

    @property
    def unmet(self) -> int:
        """Total coverage units still missing across all buyers."""
        return sum(
            max(0, self.demand[b] - self.granted.get(b, 0)) for b in self.demand
        )

    @property
    def satisfied(self) -> bool:
        """Whether every buyer's demand is fully covered."""
        return self.unmet == 0

    def copy(self) -> "CoverageState":
        """An independent copy (used by payment re-runs)."""
        return CoverageState(demand=self.demand, granted=dict(self.granted))


class ActiveBidIndex:
    """Incremental bookkeeping over one greedy run's active bid set.

    The naive greedy rescans every active bid on every iteration to
    recompute marginal utilities, and the stranding guard additionally
    rebuilds a buyer→suppliers map from the whole bid list per candidate —
    an O(n·m) scan inside an O(n) loop.  This index maintains the exact
    same quantities incrementally:

    * per-bid marginal utilities ``Uᵢⱼ(𝔼ᵗ)``, updated only when a buyer
      saturates (utilities never increase, so updates are one-directional);
    * per-buyer active supplier counts, so the stranding guard of
      ``_selection_strands`` becomes an O(#unsatisfied buyers) probe.

    Mutations must flow through :meth:`apply_win` / :meth:`remove_seller`
    so the cached quantities stay equal to what a from-scratch rescan
    would produce — the fast engine's equivalence proof rests on that.
    """

    __slots__ = (
        "coverage",
        "bids",
        "active",
        "_utility",
        "_bids_covering",
        "_seller_bids",
        "_seller_cover",
        "_unsat",
    )

    def __init__(self, bids: Sequence[Bid], coverage: CoverageState) -> None:
        self.coverage = coverage
        self.bids: list[Bid] = list(bids)
        self.active: list[bool] = [True] * len(self.bids)
        demand = coverage.demand
        granted = coverage.granted
        self._unsat: set[int] = {
            buyer
            for buyer, units in demand.items()
            if granted.get(buyer, 0) < units
        }
        relevant = {buyer for buyer, units in demand.items() if units > 0}
        self._utility: list[int] = []
        self._bids_covering: dict[int, list[int]] = {b: [] for b in relevant}
        self._seller_bids: dict[int, list[int]] = {}
        self._seller_cover: dict[int, dict[int, int]] = {b: {} for b in relevant}
        for bid_id, bid in enumerate(self.bids):
            self._utility.append(coverage.utility_of(bid))
            self._seller_bids.setdefault(bid.seller, []).append(bid_id)
            for buyer in bid.covered:
                if buyer in relevant:
                    self._bids_covering[buyer].append(bid_id)
                    cover = self._seller_cover[buyer]
                    cover[bid.seller] = cover.get(bid.seller, 0) + 1

    def utility(self, bid_id: int) -> int:
        """Current marginal utility of the bid (equals a fresh rescan)."""
        return self._utility[bid_id]

    def would_strand(self, bid_id: int) -> bool:
        """Incremental equivalent of the O(n·m) ``_selection_strands`` scan.

        Accepting the bid consumes its seller; every buyer must then still
        find its residual demand among *other* sellers with an active
        covering bid.
        """
        winner = self.bids[bid_id]
        demand = self.coverage.demand
        granted = self.coverage.granted
        covered = winner.covered
        seller = winner.seller
        for buyer in self._unsat:
            need = demand[buyer] - granted.get(buyer, 0)
            if buyer in covered:
                need -= 1
            if need <= 0:
                continue
            cover = self._seller_cover[buyer]
            available = len(cover) - (1 if seller in cover else 0)
            if available < need:
                return True
        return False

    def apply_win(self, bid_id: int) -> int:
        """Grant the bid's coverage, propagating utility decrements.

        Only buyers that *saturate* on this grant change any other bid's
        utility, so the propagation cost is bounded by the bids covering
        newly saturated buyers (instead of rescanning everything).
        Returns the marginal units contributed, like
        :meth:`CoverageState.apply`.
        """
        bid = self.bids[bid_id]
        coverage = self.coverage
        demand = coverage.demand
        granted = coverage.granted
        saturated = [
            buyer
            for buyer in bid.covered
            if buyer in self._unsat
            and granted.get(buyer, 0) + 1 >= demand[buyer]
        ]
        gained = coverage.apply(bid)
        for buyer in saturated:
            self._unsat.discard(buyer)
            for other_id in self._bids_covering[buyer]:
                if self.active[other_id]:
                    self._utility[other_id] -= 1
        return gained

    def remove_seller(self, seller: int) -> list[int]:
        """Deactivate every bid of ``seller``; return the retired bid ids."""
        retired: list[int] = []
        for bid_id in self._seller_bids.get(seller, ()):
            if not self.active[bid_id]:
                continue
            self.active[bid_id] = False
            retired.append(bid_id)
            for buyer in self.bids[bid_id].covered:
                cover = self._seller_cover.get(buyer)
                if cover is None:
                    continue
                remaining = cover.get(seller, 0) - 1
                if remaining > 0:
                    cover[seller] = remaining
                else:
                    cover.pop(seller, None)
        return retired

    def active_bid_ids(self) -> list[int]:
        """Ids of bids still in the market, in submission order."""
        return [i for i, alive in enumerate(self.active) if alive]
