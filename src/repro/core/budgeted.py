"""Budget-constrained single-stage auction (Section IV's budget 𝒲).

Section IV's online mechanism sketch stops admitting winners "until
either the total budget 𝒲 is depleted or the last microservice has been
processed".  The figure experiments never bind the budget, so the main
:mod:`repro.core.ssam` implementation omits it; this module provides the
budgeted variant as the paper describes it, for platforms that cap their
per-round payout.

Design notes
------------
Running SSAM and truncating its winner list when cumulative *payments*
cross 𝒲 keeps the mechanism's per-winner properties (each accepted bid is
still paid its critical value, so IR holds and a winner cannot gain by
misreporting its price) while making coverage best-effort: the outcome
reports how much demand was left unserved when the money ran out.

Exact budget-feasible mechanism design (à la Singer's knapsack auctions,
where the *threshold payments themselves* are budget-aware) is beyond
what the paper specifies; the docstring-level contract here is the
paper's literal stopping rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.outcomes import AuctionOutcome, WinningBid
from repro.core.ssam import PaymentRule, run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError

__all__ = ["BudgetedOutcome", "run_budgeted_ssam"]


@dataclass(frozen=True)
class BudgetedOutcome:
    """Result of a budget-capped single-stage auction.

    Attributes
    ----------
    outcome:
        The (possibly truncated) auction outcome; winners appear in the
        greedy's acceptance order, exactly as SSAM admitted them.
    budget:
        The payout cap 𝒲 the platform declared.
    budget_spent:
        Payments actually committed (≤ budget).
    unserved_units:
        Demand units left uncovered because the budget ran out (0 when
        the budget never bound).
    truncated:
        Whether the stopping rule fired before coverage completed.
    """

    outcome: AuctionOutcome
    budget: float
    budget_spent: float
    unserved_units: int
    truncated: bool

    @property
    def social_cost(self) -> float:
        """Σ winning prices of the admitted bids."""
        return self.outcome.social_cost

    @property
    def coverage_fraction(self) -> float:
        """Fraction of the round's demand units actually served."""
        total = self.outcome.instance.total_demand
        if total == 0:
            return 1.0
        return 1.0 - self.unserved_units / total


def run_budgeted_ssam(
    instance: WSPInstance,
    budget: float,
    payment_rule: PaymentRule = PaymentRule.CRITICAL_RERUN,
) -> BudgetedOutcome:
    """Run SSAM under a total payment budget 𝒲 (Section IV stopping rule).

    Winners are admitted in SSAM's greedy order while the cumulative
    payment stays within ``budget``; the first winner whose payment would
    overshoot it — and everything after — is rejected.  Rejected sellers
    receive nothing and yield nothing.
    """
    if budget < 0:
        raise ConfigurationError(f"budget must be non-negative, got {budget}")
    full = run_ssam(instance, payment_rule=payment_rule)
    admitted: list[WinningBid] = []
    spent = 0.0
    truncated = False
    for winner in sorted(full.winners, key=lambda w: w.iteration):
        if spent + winner.payment > budget + 1e-12:
            truncated = True
            break
        admitted.append(winner)
        spent += winner.payment
    served: dict[int, int] = {b: 0 for b in instance.buyers}
    for winner in admitted:
        for buyer in winner.bid.covered:
            if buyer in served:
                served[buyer] += 1
    unserved = sum(
        max(0, instance.demand[b] - served[b]) for b in instance.buyers
    )
    outcome = AuctionOutcome(
        instance=instance,
        winners=tuple(admitted),
        duals=full.duals,
        ratio_bound=full.ratio_bound,
        payment_rule=full.payment_rule,
        iterations=len(admitted),
    )
    return BudgetedOutcome(
        outcome=outcome,
        budget=budget,
        budget_spent=spent,
        unserved_units=unserved,
        truncated=truncated,
    )
