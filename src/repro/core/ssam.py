"""SSAM — the Single-Stage Auction Mechanism (Algorithm 1).

The mechanism is a greedy primal–dual approximation for the NP-hard
winner-selection problem: while some buyer's demand is unmet, it accepts
the bid with the smallest *average price* ``∇ᵢⱼ/Uᵢⱼ(𝔼ᵗ)`` (price per
marginal demand unit), removes the winning seller's other bids, and tags
every unit covered with that average price for the dual-fitting
certificate.  Winners are paid a *critical value* so that truthful bidding
is a dominant strategy (Myerson's characterization: the allocation rule is
monotone — Lemma 2 — and each payment equals the supremum price at which
the bid still wins — Lemma 3).

Two payment rules are provided:

* ``PaymentRule.CRITICAL_RERUN`` (default) — the exact critical value:
  the greedy is replayed with the winner's bid present but priced at +∞
  (so the feasibility guard still sees it as supply), and the threshold is
  the largest price at which the bid would have displaced a replay
  selection.  This is the exactly-truthful payment for greedy reverse
  auctions and is what Lemma 3's proof needs.
* ``PaymentRule.ITERATION_RUNNER_UP`` — the paper-literal rule of
  Algorithm 1 lines 6–7: the runner-up ratio *at the iteration of winning*
  scaled by the winner's utility.  It coincides with the critical value on
  most instances (a benchmark quantifies the gap) but is only a lower bound
  on it in general.

When a winner faces no competition (no other bid could complete coverage),
its threshold is capped by the instance's public per-unit
``price_ceiling`` — without such a cap a monopolist's critical value is
unbounded.
"""

from __future__ import annotations

import enum
import math
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.bids import Bid
from repro.core.duals import DualSolution
from repro.core.outcomes import AuctionOutcome, WinningBid
from repro.core.ratios import ssam_ratio_bound
from repro.core.wsp import CoverageState, WSPInstance
from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.obs.profiler import profiled
from repro.obs.runtime import STATE as _OBS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (columnar → ssam)
    from repro.core.columnar import ColumnarInstance

__all__ = ["PaymentRule", "run_ssam", "greedy_selection", "GreedyStep"]


class PaymentRule(enum.Enum):
    """How winner remunerations are computed (see module docstring)."""

    CRITICAL_RERUN = "critical_rerun"
    ITERATION_RUNNER_UP = "iteration_runner_up"


@dataclass(frozen=True)
class GreedyStep:
    """One iteration of the greedy selection loop.

    ``coverage_before`` maps buyers to units granted *before* this step,
    which is what payment re-runs need to evaluate a foreign bid's
    marginal utility at this point in time.
    """

    iteration: int
    bid: Bid
    utility: int
    ratio: float
    runner_up_ratio: float | None
    coverage_before: dict[int, int]


def _selection_key(ratio: float, bid: Bid) -> tuple[float, float, int, int]:
    """Deterministic greedy ordering: ratio, then price, then identity."""
    return (ratio, bid.price, bid.seller, bid.index)


def _selection_strands(
    winner: Bid, active: list[Bid], coverage: CoverageState
) -> bool:
    """Would accepting ``winner`` make some buyer's residual uncoverable?

    A buyer's remaining units can only come from *distinct, unused*
    sellers, so once ``winner``'s seller is consumed, every buyer must
    still have at least its residual demand in other sellers with some
    covering bid.  This necessary-condition lookahead closes the gap the
    paper's Theorem-2 termination argument glosses over: without it, the
    greedy can pick a seller's alternative bid and strand a buyer that
    needed that seller's other offer.
    """
    residual: dict[int, int] = {}
    for buyer, units in coverage.demand.items():
        need = units - coverage.granted.get(buyer, 0)
        if buyer in winner.covered and need > 0:
            need -= 1
        if need > 0:
            residual[buyer] = need
    if not residual:
        return False
    suppliers: dict[int, set[int]] = {buyer: set() for buyer in residual}
    for bid in active:
        if bid.seller == winner.seller:
            continue
        for buyer in bid.covered:
            if buyer in suppliers:
                suppliers[buyer].add(bid.seller)
    return any(
        len(suppliers[buyer]) < need for buyer, need in residual.items()
    )


def _residual_feasible(
    candidate: Bid, active: list[Bid], coverage: CoverageState
) -> bool:
    """Exact residual-feasibility check used by the escalation guard.

    Hypothetically accepts ``candidate`` (consuming its seller) and asks
    the exact solver whether the remaining active bids can still cover the
    residual demand.  This is itself an NP-hard question — which is
    exactly why it is only consulted on the rare instances the cheap guard
    cannot keep on track.
    """
    from repro.core.wsp import WSPInstance as _WSPInstance
    from repro.errors import InfeasibleInstanceError as _Infeasible

    residual: dict[int, int] = {}
    for buyer, units in coverage.demand.items():
        need = units - coverage.granted.get(buyer, 0)
        if buyer in candidate.covered and need > 0:
            need -= 1
        residual[buyer] = max(0, need)
    if all(units == 0 for units in residual.values()):
        return True
    remaining = tuple(
        Bid(seller=b.seller, index=b.index, covered=b.covered, price=0.0)
        for b in active
        if b.seller != candidate.seller
    )
    from repro.solvers.milp import solve_wsp_optimal as _solve

    try:
        _solve(_WSPInstance(bids=remaining, demand=residual, price_ceiling=None))
    except _Infeasible:
        return False
    return True


@profiled("ssam.selection")
def greedy_selection(
    bids: tuple[Bid, ...],
    demand: dict[int, int],
    *,
    require_feasible: bool = True,
    guard_feasibility: bool = True,
    exact_guard: bool = False,
) -> list[GreedyStep]:
    """Run the greedy winner-selection loop and return its full trace.

    This is the shared engine behind winner selection *and* both payment
    rules (the critical-value computation replays it on a reduced market).
    Each step records the chosen bid, its marginal utility, its average
    price, and the best runner-up ratio among *other* bids at that moment.

    With ``guard_feasibility`` (default), candidate bids whose acceptance
    would provably strand a buyer (see :func:`_selection_strands`) are
    passed over in favour of the next-best safe bid; if no candidate is
    safe the guard is waived for the iteration (matching the paper-literal
    behaviour).  The guard is price-independent, so it preserves the
    monotonicity that truthfulness rests on.

    Raises :class:`~repro.errors.InfeasibleInstanceError` when demand
    remains but no active bid contributes, unless ``require_feasible`` is
    False (payment re-runs tolerate a stuck reduced market).
    """
    coverage = CoverageState(demand=demand)
    active: list[Bid] = list(bids)
    steps: list[GreedyStep] = []
    iteration = 0
    while not coverage.satisfied:
        candidates: list[tuple[tuple[float, float, int, int], Bid, int]] = []
        for bid in active:
            utility = coverage.utility_of(bid)
            if utility <= 0:
                continue
            ratio = bid.price / utility
            candidates.append((_selection_key(ratio, bid), bid, utility))
        if _OBS.enabled:
            _OBS.metrics.counter("engine.candidates_scanned").inc(
                len(candidates)
            )
        if not candidates:
            if require_feasible:
                raise InfeasibleInstanceError(
                    f"{coverage.unmet} demand units cannot be covered by the "
                    "remaining bids"
                )
            break
        candidates.sort(key=lambda item: item[0])
        chosen_pos = 0
        if guard_feasibility:
            for pos, (_, bid, _) in enumerate(candidates):
                if _selection_strands(bid, active, coverage):
                    continue
                if exact_guard and not _residual_feasible(bid, active, coverage):
                    continue
                chosen_pos = pos
                break
        key, winner, utility = candidates[chosen_pos]
        # The runner-up is the next candidate at or above the winner's
        # ratio: candidates the guard skipped sit below it and would give
        # an IR-violating threshold.
        runner_key = (
            candidates[chosen_pos + 1][0]
            if chosen_pos + 1 < len(candidates)
            else None
        )
        steps.append(
            GreedyStep(
                iteration=iteration,
                bid=winner,
                utility=utility,
                ratio=key[0],
                runner_up_ratio=runner_key[0] if runner_key is not None else None,
                coverage_before=dict(coverage.granted),
            )
        )
        coverage.apply(winner)
        active = [bid for bid in active if bid.seller != winner.seller]
        iteration += 1
    return steps


def _critical_payment(
    instance: WSPInstance,
    winner: Bid,
    *,
    exact_guard: bool = False,
    guard_feasibility: bool = True,
) -> float:
    """The exact critical value of ``winner`` (PaymentRule.CRITICAL_RERUN).

    Replays the greedy with the winner *present but priced at +∞*.  The
    winner's presence matters (the feasibility guard counts it as future
    supply when judging other bids), but its price must not, so pricing it
    out of contention — rather than removing it — keeps the replay on
    exactly the trajectory the real run follows whenever the winner loses.

    At each iteration ``k`` with coverage ``C_k`` where the selected bid
    has average price ``ρ_k``, the winner would have been chosen instead
    had it asked below ``Uᵢⱼ(C_k)·ρ_k`` (and been guard-safe); the critical
    value is the maximum such threshold.  Two terminal cases cap the
    threshold with the public per-unit price ceiling: the replay selects
    the ∞-priced winner itself, or gets stuck — either way the winner is
    pivotal and wins at any admissible price.
    """
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    infinite = winner.with_price(math.inf)
    active: list[Bid] = [
        infinite if b.key == winner.key else b for b in instance.bids
    ]
    coverage = CoverageState(demand=demand)
    ceiling = instance.effective_ceiling
    threshold = 0.0
    while not coverage.satisfied:
        candidates: list[tuple[tuple[float, float, int, int], Bid, int]] = []
        for candidate in active:
            utility = coverage.utility_of(candidate)
            if utility <= 0:
                continue
            ratio = candidate.price / utility
            candidates.append(
                (_selection_key(ratio, candidate), candidate, utility)
            )
        winner_utility = coverage.utility_of(infinite)
        if not candidates:
            # Replay stuck with demand left over: if the winner could
            # still contribute it is pivotal and ceiling-capped.
            if winner_utility > 0:
                threshold = max(threshold, winner_utility * ceiling)
            break
        candidates.sort(key=lambda item: item[0])
        chosen_pos = 0
        if guard_feasibility:
            for pos, (_, candidate, _) in enumerate(candidates):
                if _selection_strands(candidate, active, coverage):
                    continue
                if exact_guard and not _residual_feasible(
                    candidate, active, coverage
                ):
                    continue
                chosen_pos = pos
                break
        key, chosen, _ = candidates[chosen_pos]
        if chosen.key == winner.key:
            # Only the winner serves the remaining demand: pivotal.
            if winner_utility > 0:
                threshold = max(threshold, winner_utility * ceiling)
            break
        winner_safe = not guard_feasibility or not _selection_strands(
            infinite, active, coverage
        )
        if winner_safe and guard_feasibility and exact_guard:
            winner_safe = _residual_feasible(infinite, active, coverage)
        if winner_utility > 0 and winner_safe:
            threshold = max(threshold, winner_utility * key[0])
        coverage.apply(chosen)
        if chosen.seller == winner.seller:
            # A sibling bid of the winner's seller won: the winner is out
            # of the market from here on.
            break
        active = [b for b in active if b.seller != chosen.seller]
    return threshold


def _runner_up_payment(
    instance: WSPInstance, step: GreedyStep
) -> float:
    """Paper-literal payment (Algorithm 1 lines 6–7).

    ``pᵢ' = Uᵢ'ⱼ'(𝔼ᵗ) · ∇ᵢ°ⱼ°/Uᵢ°ⱼ°(𝔼ᵗ)`` where ``(i°, j°)`` is the best
    other bid at the winning iteration; the public per-unit ceiling is
    used when no runner-up exists.
    """
    runner_ratio = (
        step.runner_up_ratio
        if step.runner_up_ratio is not None
        else instance.effective_ceiling
    )
    return step.utility * runner_ratio


def run_ssam(
    instance: WSPInstance,
    *deprecated_args: PaymentRule,
    payment_rule: PaymentRule = PaymentRule.CRITICAL_RERUN,
    parallelism: int | str = "auto",
    guard: bool = True,
    engine: str = "fast",
    original_prices: dict[tuple[int, int], float] | None = None,
    columnar: "ColumnarInstance | None" = None,
) -> AuctionOutcome:
    """Execute the single-stage auction on ``instance``.

    Parameters
    ----------
    instance:
        The round's winner-selection problem.  Must be feasible.
    payment_rule:
        Which critical-value realization to pay winners with.
    parallelism:
        Worker processes for the per-winner critical-payment replays
        (``PaymentRule.CRITICAL_RERUN`` only; the replays are mutually
        independent).  ``"auto"`` (default) runs serially on small
        instances and sizes a pool from the instance otherwise (see
        :func:`repro.core.engine.resolve_parallelism`); an explicit
        integer forces that worker count (1 = serial), exactly as
        before.
    guard:
        Whether the stranding-lookahead feasibility guard steers the
        greedy away from choices that provably dead-end a buyer.  Disable
        only for paper-literal ablations; an unguarded run may raise
        :class:`~repro.errors.InfeasibleInstanceError` on feasible
        instances.
    engine:
        ``"fast"`` (default) runs the incremental
        :mod:`repro.core.engine` hot path; ``"columnar"`` runs the
        numpy-vectorized :mod:`repro.core.columnar` kernels (batched
        critical payments, cheap round-to-round state carry);
        ``"reference"`` runs the naive rescan-everything loop kept as
        the correctness oracle.  All three produce identical outcomes
        (a property test enforces this).
    columnar:
        A prebuilt :class:`~repro.core.columnar.ColumnarInstance` for
        this instance's bids and positive demand (``engine="columnar"``
        only) — the MSOA incremental path passes its carried, re-priced
        layout here to skip the structural rebuild.
    original_prices:
        When SSAM runs inside the online framework, bid prices have been
        *scaled*; this maps bid keys back to the announced prices so the
        outcome can report the true social cost.  Defaults to the bids'
        own prices.

    Returns
    -------
    AuctionOutcome
        Winners with payments, dual-fitting certificate, and the
        ``W·Ξ`` ratio bound of Theorem 3.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.workload import MarketConfig, generate_round
    >>> instance = generate_round(MarketConfig(), np.random.default_rng(7))
    >>> outcome = run_ssam(instance)
    >>> outcome.satisfied and outcome.total_payment >= outcome.social_cost
    True

    .. deprecated:: 1.1
        Passing ``payment_rule`` positionally is deprecated; use the
        keyword form ``run_ssam(instance, payment_rule=...)``.
    """
    if deprecated_args:
        if len(deprecated_args) > 1:
            raise TypeError(
                "run_ssam() takes one positional argument (the instance); "
                "pass options by keyword"
            )
        warnings.warn(
            "passing payment_rule positionally to run_ssam() is deprecated; "
            "use run_ssam(instance, payment_rule=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        payment_rule = deprecated_args[0]
    if engine not in ("fast", "reference", "columnar"):
        raise ConfigurationError(
            f"engine must be 'fast', 'reference' or 'columnar', got {engine!r}"
        )
    from repro.core.engine import (
        compute_critical_payments,
        fast_greedy_selection,
        validate_parallelism,
    )

    validate_parallelism(parallelism)

    use_fast = engine == "fast"
    select = fast_greedy_selection if use_fast else greedy_selection
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    cinst = None
    if engine == "columnar" and demand:
        from repro.core.columnar import (
            ColumnarInstance,
            columnar_greedy_selection,
        )

        if columnar is not None:
            if len(columnar.bids) != len(instance.bids):
                raise ConfigurationError(
                    "columnar layout does not match the instance: "
                    f"{len(columnar.bids)} rows vs {len(instance.bids)} bids"
                )
            cinst = columnar
        else:
            cinst = ColumnarInstance.build(instance.bids, demand)

        def select(bids, demand, **kwargs):  # noqa: F811 - engine dispatch
            return columnar_greedy_selection(
                bids, demand, columnar=cinst, **kwargs
            )

    duals = DualSolution(instance=instance)
    tracer = _OBS.tracer
    with tracer.span(
        "auction",
        mechanism="ssam",
        engine=engine,
        payment_rule=payment_rule.value,
        bids=len(instance.bids),
        total_demand=instance.total_demand,
        # JSON keys are strings; summarize() converts them back to ints.
        demand={str(b): u for b, u in demand.items()},
    ) as auction_span:
        if _OBS.enabled:
            metrics = _OBS.metrics
            metrics.counter("ssam.runs").inc()
            metrics.counter("ssam.bids_considered").inc(len(instance.bids))
        if not demand:
            tracer.annotate(
                auction_span,
                social_cost=0.0,
                total_payment=0.0,
                iterations=0,
                winners=0,
            )
            return AuctionOutcome(
                instance=instance,
                winners=(),
                duals=duals,
                ratio_bound=1.0,
                payment_rule=payment_rule.value,
                iterations=0,
                mechanism="ssam",
            )
        with tracer.span("greedy-selection") as selection_span:
            try:
                steps = select(instance.bids, demand, guard_feasibility=guard)
                exact_guard = False
            except InfeasibleInstanceError:
                if not guard:
                    raise
                # The cheap lookahead could not keep the greedy on a
                # completing trajectory; escalate to the exact
                # residual-feasibility guard (which completes whenever the
                # instance is feasible at all).
                steps = select(instance.bids, demand, exact_guard=True)
                exact_guard = True
            tracer.annotate(
                selection_span, iterations=len(steps), exact_guard=exact_guard
            )
        with tracer.span("payment-computation", rule=payment_rule.value):
            if payment_rule is PaymentRule.CRITICAL_RERUN:
                payments = compute_critical_payments(
                    instance,
                    [step.bid for step in steps],
                    exact_guard=exact_guard,
                    guard_feasibility=guard,
                    parallelism=parallelism,
                    use_fast=use_fast,
                    engine=engine,
                    columnar=cinst,
                    trajectory=steps,
                )
            else:
                payments = [_runner_up_payment(instance, step) for step in steps]
        winners: list[WinningBid] = []
        for step, payment in zip(steps, payments):
            # Tag every unit this bid newly covers with its average price
            # (the dual-fitting bookkeeping behind Lemma 1 / Theorem 3).
            dual_updates = 0
            for buyer in step.bid.covered:
                if step.coverage_before.get(buyer, 0) < demand.get(buyer, 0):
                    duals.record_unit(buyer, step.ratio)
                    dual_updates += 1
            key = step.bid.key
            original = (
                original_prices[key]
                if original_prices is not None
                else step.bid.price
            )
            winners.append(
                WinningBid(
                    bid=step.bid,
                    payment=payment,
                    iteration=step.iteration,
                    marginal_utility=step.utility,
                    average_price=step.ratio,
                    original_price=original,
                )
            )
            if _OBS.enabled:
                _OBS.metrics.counter("ssam.dual_updates").inc(dual_updates)
                tracer.event(
                    "winner",
                    iteration=step.iteration,
                    seller=step.bid.seller,
                    index=step.bid.index,
                    price=step.bid.price,
                    original_price=float(original),
                    payment=float(payment),
                    utility=step.utility,
                    average_price=step.ratio,
                    covered=sorted(step.bid.covered),
                )
        outcome = AuctionOutcome(
            instance=instance,
            winners=tuple(winners),
            duals=duals,
            ratio_bound=ssam_ratio_bound(instance.total_demand, instance.bids),
            payment_rule=payment_rule.value,
            iterations=len(steps),
            mechanism="ssam",
        )
        tracer.annotate(
            auction_span,
            social_cost=outcome.social_cost,
            total_payment=outcome.total_payment,
            iterations=len(steps),
            winners=len(winners),
        )
        if _OBS.enabled:
            metrics = _OBS.metrics
            metrics.counter("ssam.winners").inc(len(winners))
            metrics.counter("ssam.iterations").inc(len(steps))
            for winning in winners:
                if winning.bid.price > 0 and math.isfinite(winning.payment):
                    metrics.histogram("ssam.payment_price_ratio").observe(
                        winning.payment / winning.bid.price
                    )
        outcome.verify()
        return outcome
