"""The MSOA evaluation variants of Section V: MSOA-DA, MSOA-RC, MSOA-OA.

The paper compares plain MSOA against three tuned configurations:

* **MSOA-DA** — "with optimal demand estimation scheme": the per-round
  demand fed to the auction is the *true* resource requirement rather than
  the Section-III estimate (which over- or under-shoots under bursty
  workloads).
* **MSOA-RC** — "with higher resource capacity values": every seller's
  long-run capacity ``Θᵢ`` is inflated by a relaxation factor, modelling a
  platform that negotiated larger sharing commitments.
* **MSOA-OA** — both adjustments at once.

A :class:`HorizonScenario` carries the two demand views (estimated and
true) plus the baseline capacities, so all four mechanisms can run on
*identical* bid streams and differ only in what the variant changes.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.msoa import run_msoa
from repro.core.outcomes import OnlineOutcome
from repro.core.ssam import PaymentRule
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError

__all__ = [
    "HorizonScenario",
    "run_msoa_base",
    "run_msoa_da",
    "run_msoa_rc",
    "run_msoa_oa",
    "VARIANT_RUNNERS",
]


@dataclass(frozen=True)
class HorizonScenario:
    """A full online horizon with both demand views.

    Attributes
    ----------
    rounds_estimated:
        Per-round instances whose demands come from the demand estimator —
        what the plain online mechanism observes.
    rounds_true:
        The same rounds with oracle (true) demands — what the DA/OA
        variants are allowed to use.
    capacities:
        Baseline long-run sharing capacities ``Θᵢ``.
    """

    rounds_estimated: tuple[WSPInstance, ...]
    rounds_true: tuple[WSPInstance, ...]
    capacities: Mapping[int, int]

    def __post_init__(self) -> None:
        if len(self.rounds_estimated) != len(self.rounds_true):
            raise ConfigurationError(
                "estimated and true horizons must have the same number of "
                f"rounds, got {len(self.rounds_estimated)} vs "
                f"{len(self.rounds_true)}"
            )


def _relaxed(capacities: Mapping[int, int], factor: float) -> dict[int, int]:
    if factor < 1.0:
        raise ConfigurationError(
            f"capacity relaxation factor must be >= 1, got {factor}"
        )
    return {seller: int(math.ceil(cap * factor)) for seller, cap in capacities.items()}


def run_msoa_base(
    scenario: HorizonScenario,
    *,
    payment_rule: PaymentRule = PaymentRule.CRITICAL_RERUN,
    parallelism: int = 1,
    engine: str = "fast",
    on_infeasible: str = "best_effort",
    faults=None,
    resilience=None,
) -> OnlineOutcome:
    """Plain MSOA: estimated demands, baseline capacities."""
    return run_msoa(
        scenario.rounds_estimated,
        scenario.capacities,
        payment_rule=payment_rule,
        parallelism=parallelism,
        engine=engine,
        on_infeasible=on_infeasible,
        faults=faults,
        resilience=resilience,
    )


def run_msoa_da(
    scenario: HorizonScenario,
    *,
    payment_rule: PaymentRule = PaymentRule.CRITICAL_RERUN,
    parallelism: int = 1,
    engine: str = "fast",
    on_infeasible: str = "best_effort",
    faults=None,
    resilience=None,
) -> OnlineOutcome:
    """MSOA-DA: oracle demands, baseline capacities."""
    return run_msoa(
        scenario.rounds_true,
        scenario.capacities,
        payment_rule=payment_rule,
        parallelism=parallelism,
        engine=engine,
        on_infeasible=on_infeasible,
        faults=faults,
        resilience=resilience,
    )


def run_msoa_rc(
    scenario: HorizonScenario,
    *,
    relaxation: float = 2.0,
    payment_rule: PaymentRule = PaymentRule.CRITICAL_RERUN,
    parallelism: int = 1,
    engine: str = "fast",
    on_infeasible: str = "best_effort",
    faults=None,
    resilience=None,
) -> OnlineOutcome:
    """MSOA-RC: estimated demands, capacities inflated by ``relaxation``."""
    return run_msoa(
        scenario.rounds_estimated,
        _relaxed(scenario.capacities, relaxation),
        payment_rule=payment_rule,
        parallelism=parallelism,
        engine=engine,
        on_infeasible=on_infeasible,
        faults=faults,
        resilience=resilience,
    )


def run_msoa_oa(
    scenario: HorizonScenario,
    *,
    relaxation: float = 2.0,
    payment_rule: PaymentRule = PaymentRule.CRITICAL_RERUN,
    parallelism: int = 1,
    engine: str = "fast",
    on_infeasible: str = "best_effort",
    faults=None,
    resilience=None,
) -> OnlineOutcome:
    """MSOA-OA: oracle demands *and* relaxed capacities."""
    return run_msoa(
        scenario.rounds_true,
        _relaxed(scenario.capacities, relaxation),
        payment_rule=payment_rule,
        parallelism=parallelism,
        engine=engine,
        on_infeasible=on_infeasible,
        faults=faults,
        resilience=resilience,
    )


VARIANT_RUNNERS = {
    "MSOA": run_msoa_base,
    "MSOA-DA": run_msoa_da,
    "MSOA-RC": run_msoa_rc,
    "MSOA-OA": run_msoa_oa,
}
"""Name → runner mapping used by the figure-5a experiment sweep."""
