"""Human-readable auction explanations.

Mechanism outcomes can be opaque: *why* did this bid win, why was that
payment so high?  :func:`explain_outcome` reconstructs the greedy's
decision sequence for a finished auction and renders it as a narrative —
per iteration: the candidate ranking by average price, the winner, its
marginal contribution, and (for the default payment rule) the threshold
that set its payment.  Used by the CLI's ``explain`` command and handy in
tests when a property fails.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.outcomes import AuctionOutcome
from repro.core.ssam import greedy_selection
from repro.core.wsp import CoverageState
from repro.errors import MechanismError

__all__ = ["IterationExplanation", "explain_outcome", "render_explanation"]


@dataclass(frozen=True)
class IterationExplanation:
    """One greedy iteration, reconstructed for presentation."""

    iteration: int
    winner_key: tuple[int, int]
    winner_price: float
    marginal_units: int
    average_price: float
    runner_up_ratio: float | None
    coverage_after: dict[int, int]
    payment: float


def explain_outcome(outcome: AuctionOutcome) -> list[IterationExplanation]:
    """Reconstruct the winning sequence of a finished auction.

    Replays the greedy on the outcome's instance and cross-checks that
    the replay matches the recorded winners (a mismatch indicates the
    instance was mutated after the run — raised as
    :class:`~repro.errors.MechanismError` rather than silently explaining
    the wrong auction).
    """
    demand = {b: u for b, u in outcome.instance.demand.items() if u > 0}
    if not demand:
        return []
    steps = greedy_selection(outcome.instance.bids, demand)
    recorded = {w.bid.key: w for w in outcome.winners}
    if {s.bid.key for s in steps} != set(recorded):
        raise MechanismError(
            "replay does not match the recorded winners; was the instance "
            "modified after the auction ran?"
        )
    explanations = []
    coverage = CoverageState(demand=demand)
    for step in steps:
        coverage.apply(step.bid)
        winner = recorded[step.bid.key]
        explanations.append(
            IterationExplanation(
                iteration=step.iteration,
                winner_key=step.bid.key,
                winner_price=step.bid.price,
                marginal_units=step.utility,
                average_price=step.ratio,
                runner_up_ratio=step.runner_up_ratio,
                coverage_after=dict(coverage.granted),
                payment=winner.payment,
            )
        )
    return explanations


def render_explanation(outcome: AuctionOutcome) -> str:
    """The narrative text for one auction outcome."""
    explanations = explain_outcome(outcome)
    if not explanations:
        return "no demand: the auction closed without winners"
    lines = [
        f"{len(explanations)} winners cover "
        f"{outcome.instance.total_demand} demand units "
        f"(social cost {outcome.social_cost:.2f}, "
        f"payments {outcome.total_payment:.2f}):"
    ]
    for item in explanations:
        seller, index = item.winner_key
        lines.append(
            f"  [{item.iteration}] seller {seller} bid {index}: "
            f"price {item.winner_price:.2f} for {item.marginal_units} "
            f"new unit(s) -> {item.average_price:.2f}/unit"
        )
        if item.runner_up_ratio is not None:
            lines.append(
                f"       next-best alternative priced "
                f"{item.runner_up_ratio:.2f}/unit; paid {item.payment:.2f}"
            )
        else:
            lines.append(
                f"       no competing alternative; paid {item.payment:.2f} "
                "(ceiling-capped threshold)"
            )
    premium = outcome.total_payment - outcome.social_cost
    lines.append(
        f"truthfulness premium (payments − prices): {premium:.2f}"
    )
    return "\n".join(lines)
