"""Dual-variable bookkeeping for the primal–dual analysis (Lemma 1, Thm 3).

SSAM's analysis is a dual-fitting argument: while the greedy loop covers
demand units, each unit ``u`` of buyer ``b`` is tagged with the average
price ``f(b, u) = ∇ᵢⱼ/Uᵢⱼ(𝔼ᵗ)`` of the bid that covered it.  Scaling these
prices down by ``W·Ξ`` yields a feasible solution to the dual LP (16),
whose objective lower-bounds the optimum — which is exactly how the paper
certifies the ``W·Ξ`` approximation ratio.

:class:`DualSolution` stores the tagged prices, performs the scaling, and
numerically verifies dual feasibility (constraint 17) against the instance,
reporting the tightest scaling that is actually feasible (``fitting
factor``).  The certified lower bound it exposes is what the analysis
package uses as an optimum proxy when the exact solver is too slow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ratios import harmonic, price_spread
from repro.core.wsp import WSPInstance
from repro.errors import MechanismError

__all__ = ["DualSolution"]


@dataclass
class DualSolution:
    """Dual-fitting certificate produced alongside a greedy run.

    Attributes
    ----------
    instance:
        The single-round instance the certificate belongs to.
    unit_prices:
        ``f(b, u)`` — for every buyer ``b``, the list of average prices at
        which its units were covered, in coverage order.
    """

    instance: WSPInstance
    unit_prices: dict[int, list[float]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-compatible unit-price tags (the instance is stored alongside)."""
        return {
            "unit_prices": {
                str(buyer): list(prices)
                for buyer, prices in self.unit_prices.items()
            }
        }

    @staticmethod
    def from_dict(data: dict, instance: WSPInstance) -> "DualSolution":
        """Rebuild a certificate from :meth:`to_dict` output and its instance."""
        return DualSolution(
            instance=instance,
            unit_prices={
                int(buyer): [float(p) for p in prices]
                for buyer, prices in data["unit_prices"].items()
            },
        )

    def record_unit(self, buyer: int, average_price: float) -> None:
        """Tag buyer ``b``'s next covered unit with the greedy average price."""
        if average_price < 0:
            raise MechanismError(
                f"unit price must be non-negative, got {average_price}"
            )
        self.unit_prices.setdefault(buyer, []).append(average_price)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def total_tagged_price(self) -> float:
        """``Σ f(b, u)`` — equals the greedy's primal objective (Eq. 21)."""
        return sum(sum(prices) for prices in self.unit_prices.values())

    @property
    def theoretical_scale(self) -> float:
        """``W·Ξ`` — the paper's dual-fitting scale factor (Theorem 3)."""
        return harmonic(max(1, self.instance.total_demand)) * price_spread(
            self.instance.bids
        )

    def buyer_duals(self, scale: float | None = None) -> dict[int, float]:
        """Per-buyer dual values ``y_b`` at the given scale.

        The buyer's dual is its *average* tagged unit price divided by the
        scale, so the dual objective ``Σ_b demand[b]·y_b`` equals
        ``Σ f(b,u) / scale`` — the paper's Eq. (20) with the h-correction
        already absorbed.
        """
        scale = self.theoretical_scale if scale is None else scale
        if scale <= 0:
            raise MechanismError(f"dual scale must be positive, got {scale}")
        duals: dict[int, float] = {}
        for buyer, prices in self.unit_prices.items():
            if prices:
                duals[buyer] = (sum(prices) / len(prices)) / scale
        return duals

    def objective(self, scale: float | None = None) -> float:
        """The dual objective ``Σ_b demand[b]·y_b`` at the given scale.

        Buyers whose tagged unit count differs from their demand (possible
        only in truncated runs) contribute their tagged units exactly.
        """
        scale = self.theoretical_scale if scale is None else scale
        return self.total_tagged_price / scale

    def max_violation(self, scale: float | None = None) -> float:
        """The largest ratio ``(Σ_{b∈S} y_b) / price`` over all bids.

        Dual feasibility (constraint 17 with the seller/h terms at zero)
        requires this to be at most 1.  Bids with zero price are feasible
        only if the duals they see are all zero; otherwise the violation is
        infinite.
        """
        duals = self.buyer_duals(scale)
        worst = 0.0
        for bid in self.instance.bids:
            load = sum(duals.get(buyer, 0.0) for buyer in bid.covered)
            if bid.price == 0:
                if load > 0:
                    return float("inf")
                continue
            worst = max(worst, load / bid.price)
        return worst

    def is_feasible(self, scale: float | None = None, tolerance: float = 1e-9) -> bool:
        """Whether the scaled duals satisfy every bid constraint."""
        return self.max_violation(scale) <= 1.0 + tolerance

    def fitted(self) -> tuple[dict[int, float], float]:
        """Return ``(duals, objective)`` scaled to guaranteed feasibility.

        Starts from the theoretical ``W·Ξ`` scale and, if the numerical
        check still finds a violated bid constraint (possible because the
        paper's Ξ accounting is loose for exotic multi-bid instances),
        scales further down by the measured violation.  The result is
        always a *certified* lower bound on the LP optimum.
        """
        scale = self.theoretical_scale
        violation = self.max_violation(scale)
        if violation > 1.0:
            scale *= violation * (1.0 + 1e-12)
        return self.buyer_duals(scale), self.objective(scale)

    def certified_lower_bound(self) -> float:
        """A feasible-dual lower bound on the round's optimal social cost."""
        _, objective = self.fitted()
        return objective
