"""The paper's primary contribution: truthful single-stage and online
multi-stage auction mechanisms for resource sharing among microservices.

* :mod:`repro.core.bids` / :mod:`repro.core.wsp` — the bidding language and
  the NP-hard winner-selection problem (ILP 12–15).
* :mod:`repro.core.ssam` — Algorithm 1, the greedy primal–dual single-stage
  auction with critical payments.
* :mod:`repro.core.engine` — the fast path: incremental bookkeeping plus
  parallel critical payments, bit-identical to the reference loops.
* :mod:`repro.core.msoa` — Algorithm 2, the online framework with
  capacity-aware price scaling.
* :mod:`repro.core.variants` — the MSOA-DA / -RC / -OA evaluation variants.
* :mod:`repro.core.duals` / :mod:`repro.core.ratios` — the primal–dual
  certificates and the Theorem-3 / Theorem-7 bounds.
* :mod:`repro.core.mechanism` / :mod:`repro.core.registry` — the shared
  mechanism protocol and the string-keyed registry dispatching SSAM, the
  baselines, and MSOA by name.
"""

from repro.core.bids import Bid, BidderProfile, group_bids_by_seller, validate_bids
from repro.core.budgeted import BudgetedOutcome, run_budgeted_ssam
from repro.core.duals import DualSolution
from repro.core.engine import (
    compute_critical_payments,
    fast_critical_payment,
    fast_greedy_selection,
)
from repro.core.explain import (
    IterationExplanation,
    explain_outcome,
    render_explanation,
)
from repro.core.mechanism import (
    Mechanism,
    OnlineMechanism,
    SingleRoundOnlineAdapter,
    outcome_from_selection,
)
from repro.core.msoa import MultiStageOnlineAuction, run_msoa
from repro.core.outcomes import AuctionOutcome, OnlineOutcome, RoundResult, WinningBid
from repro.core.ratios import (
    capacity_margin,
    harmonic,
    msoa_competitive_bound,
    price_spread,
    ssam_ratio_bound,
)
from repro.core.registry import (
    MechanismSpec,
    get_mechanism,
    get_spec,
    list_mechanisms,
    make_online,
    mechanism_specs,
    register,
)
from repro.core.ssam import GreedyStep, PaymentRule, greedy_selection, run_ssam
from repro.core.variants import (
    VARIANT_RUNNERS,
    HorizonScenario,
    run_msoa_base,
    run_msoa_da,
    run_msoa_oa,
    run_msoa_rc,
)
from repro.core.wsp import ActiveBidIndex, CoverageState, WSPInstance

__all__ = [
    "Bid",
    "BidderProfile",
    "group_bids_by_seller",
    "validate_bids",
    "BudgetedOutcome",
    "run_budgeted_ssam",
    "DualSolution",
    "compute_critical_payments",
    "fast_critical_payment",
    "fast_greedy_selection",
    "IterationExplanation",
    "explain_outcome",
    "render_explanation",
    "Mechanism",
    "OnlineMechanism",
    "SingleRoundOnlineAdapter",
    "outcome_from_selection",
    "MechanismSpec",
    "get_mechanism",
    "get_spec",
    "list_mechanisms",
    "make_online",
    "mechanism_specs",
    "register",
    "MultiStageOnlineAuction",
    "run_msoa",
    "AuctionOutcome",
    "OnlineOutcome",
    "RoundResult",
    "WinningBid",
    "capacity_margin",
    "harmonic",
    "msoa_competitive_bound",
    "price_spread",
    "ssam_ratio_bound",
    "GreedyStep",
    "PaymentRule",
    "greedy_selection",
    "run_ssam",
    "VARIANT_RUNNERS",
    "HorizonScenario",
    "run_msoa_base",
    "run_msoa_da",
    "run_msoa_oa",
    "run_msoa_rc",
    "ActiveBidIndex",
    "CoverageState",
    "WSPInstance",
]
