"""The uniform mechanism interface every auction in this repo speaks.

The paper's evaluation is comparative — SSAM/MSOA against an offline
optimum, greedy variants, and pricing baselines — so every mechanism must
produce the *same* outcome type for the figures, the platform loop, and
the serde layer to treat them interchangeably.  This module defines that
contract:

* :class:`Mechanism` — a single-round mechanism is any callable mapping a
  :class:`~repro.core.wsp.WSPInstance` to an
  :class:`~repro.core.outcomes.AuctionOutcome`;
* :class:`OnlineMechanism` — a stateful per-round mechanism shaped like
  :class:`~repro.core.msoa.MultiStageOnlineAuction` (``process_round`` /
  ``finalize``);
* :func:`outcome_from_selection` — the bridge that lets baselines which
  only *select* bids (VCG, pay-as-bid, posted price, random, greedy
  variants) emit full outcomes with dual bookkeeping and per-winner
  context, instead of bespoke result dataclasses;
* :class:`SingleRoundOnlineAdapter` — wraps any single-round mechanism
  with MSOA's per-seller capacity accounting so baselines can drive the
  full multi-round platform loop (Figure 2) end-to-end.

The string-keyed registry over these protocols lives in
:mod:`repro.core.registry`.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping, Sequence
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from repro.core.bids import Bid
from repro.core.duals import DualSolution
from repro.core.outcomes import (
    AuctionOutcome,
    OnlineOutcome,
    RoundResult,
    WinningBid,
)
from repro.core.ratios import capacity_margin
from repro.core.wsp import CoverageState, WSPInstance
from repro.errors import ConfigurationError, InfeasibleInstanceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults → core)
    from repro.faults.injector import FaultInjector
    from repro.faults.models import FaultPlan
    from repro.faults.policies import ResiliencePolicy

__all__ = [
    "Mechanism",
    "OnlineMechanism",
    "outcome_from_selection",
    "resolve_fault_args",
    "SingleRoundOnlineAdapter",
]


def resolve_fault_args(faults, resilience):
    """Resolve ``faults=``/``resilience=`` kwargs into (injector, policy).

    Shared by every fault-aware entry point (MSOA, the adapter, the
    platform).  Imports :mod:`repro.faults` lazily so :mod:`repro.core`
    never depends on it at import time (faults imports core, not vice
    versa).  A null plan resolves to *no* injector: the round loop then
    takes the exact unfaulted code path, which is what makes the
    all-zero-plan bit-identity guarantee true by construction.
    """
    if faults is None:
        if resilience is not None:
            raise ConfigurationError(
                "resilience= requires faults= (a policy alone has nothing "
                "to recover from)"
            )
        return None, None
    from repro.faults.injector import FaultInjector
    from repro.faults.models import FaultPlan
    from repro.faults.policies import DEFAULT_POLICY, ResiliencePolicy

    if isinstance(faults, FaultPlan):
        injector = None if faults.is_null else FaultInjector(faults)
    elif isinstance(faults, FaultInjector):
        injector = None if faults.is_null else faults
    else:
        raise ConfigurationError(
            f"faults must be a FaultPlan or FaultInjector, got "
            f"{type(faults).__name__}"
        )
    if resilience is None:
        policy = DEFAULT_POLICY
    elif isinstance(resilience, ResiliencePolicy):
        policy = resilience
    else:
        raise ConfigurationError(
            f"resilience must be a ResiliencePolicy, got "
            f"{type(resilience).__name__}"
        )
    return injector, (policy if injector is not None else None)


@runtime_checkable
class Mechanism(Protocol):
    """A single-round mechanism: ``WSPInstance → AuctionOutcome``.

    Implementations may accept mechanism-specific keyword options (e.g.
    ``parallelism`` for SSAM, ``unit_price`` for posted pricing); the
    registry records which options each entry understands so dispatchers
    can filter what they forward.
    """

    def __call__(
        self, instance: WSPInstance, **options: Any
    ) -> AuctionOutcome: ...


@runtime_checkable
class OnlineMechanism(Protocol):
    """A stateful per-round mechanism (MSOA-shaped).

    ``process_round`` consumes one round's instance as it arrives —
    decisions may depend only on past rounds — and ``finalize`` packages
    the horizon into an :class:`~repro.core.outcomes.OnlineOutcome`.
    """

    def process_round(self, instance: WSPInstance) -> RoundResult: ...

    def finalize(self) -> OnlineOutcome: ...


def outcome_from_selection(
    instance: WSPInstance,
    chosen: Sequence[Bid],
    *,
    mechanism: str,
    payment_rule: str,
    payments: Mapping[tuple[int, int], float] | None = None,
    original_prices: Mapping[tuple[int, int], float] | None = None,
    ratio_bound: float = float("nan"),
    require_cover: bool = True,
) -> AuctionOutcome:
    """Build a full :class:`AuctionOutcome` from a bare bid selection.

    Baseline mechanisms decide *which* bids win (and possibly what to pay
    them) without running the primal–dual greedy; this helper replays the
    selection through :class:`~repro.core.wsp.CoverageState` in acceptance
    order to reconstruct the per-winner context SSAM records natively
    (marginal utilities, average prices, dual unit tags), so downstream
    consumers — reporting, serde, audits — see one uniform shape.

    Parameters
    ----------
    chosen:
        Winning bids in acceptance order (at most one per seller).
    payments:
        Per-bid-key payments; defaults to pay-as-bid (each winner is paid
        its announced price).
    original_prices:
        Per-bid-key unscaled prices for the social-cost accounting;
        defaults to the bids' announced prices.  Posted pricing maps these
        to true costs, matching its market-efficiency semantics.
    ratio_bound:
        The mechanism's approximation guarantee (1.0 for exact VCG,
        ``nan`` for heuristics with no bound).
    require_cover:
        When true (default), verify the winner set is primal feasible.
        Incomplete mechanisms (posted price) pass ``False`` and report
        the shortfall through :attr:`AuctionOutcome.unmet_units`.

    Bids contributing no marginal coverage at their acceptance point are
    dropped from the winner list — a complete selection never contains
    them, and keeping them would break the per-winner invariants.
    """
    coverage = CoverageState(demand=dict(instance.demand))
    duals = DualSolution(instance=instance)
    winners: list[WinningBid] = []
    for iteration, bid in enumerate(chosen):
        utility = coverage.utility_of(bid)
        if utility <= 0:
            coverage.apply(bid)
            continue
        average_price = bid.price / utility
        for buyer in bid.covered:
            if coverage.granted.get(buyer, 0) < coverage.demand.get(buyer, 0):
                duals.record_unit(buyer, average_price)
        coverage.apply(bid)
        key = bid.key
        payment = bid.price if payments is None else payments.get(key, bid.price)
        original = (
            bid.price
            if original_prices is None
            else original_prices.get(key, bid.price)
        )
        winners.append(
            WinningBid(
                bid=bid,
                payment=payment,
                iteration=iteration,
                marginal_utility=utility,
                average_price=average_price,
                original_price=original,
            )
        )
    outcome = AuctionOutcome(
        instance=instance,
        winners=tuple(winners),
        duals=duals,
        ratio_bound=ratio_bound,
        payment_rule=payment_rule,
        iterations=len(winners),
        mechanism=mechanism,
    )
    if require_cover:
        outcome.verify()
    return outcome


def _empty_outcome(
    instance: WSPInstance, *, mechanism: str, payment_rule: str
) -> AuctionOutcome:
    """An empty-winner outcome for a skipped (infeasible) round."""
    return AuctionOutcome(
        instance=instance,
        winners=(),
        duals=DualSolution(instance=instance),
        ratio_bound=float("nan"),
        payment_rule=payment_rule,
        iterations=0,
        mechanism=mechanism,
    )


class SingleRoundOnlineAdapter:
    """Drive any single-round mechanism through the multi-round loop.

    Implements :class:`OnlineMechanism` around a :class:`Mechanism`:
    MSOA's line-5 capacity screen (bids that would overflow a seller's
    remaining long-run capacity ``Θᵢ`` are excluded) and line-12 χ
    accounting are kept, but there are no scarcity prices — each round
    runs on announced prices (``ψ ≡ 0``).  This is exactly the "what if a
    baseline ran the platform" counterfactual the comparative evaluation
    needs: same capacity discipline, different selection/payment rule.

    The finalized outcome reports ``alpha`` and ``competitive_bound`` as
    ``nan`` — baselines carry no online guarantee — while ``beta`` is
    still the observed capacity margin for comparability with MSOA runs.
    """

    def __init__(
        self,
        runner: Callable[..., AuctionOutcome],
        capacities: Mapping[int, int],
        *,
        name: str,
        payment_rule: str = "mechanism-default",
        on_infeasible: str = "raise",
        options: Mapping[str, Any] | None = None,
        faults: "FaultPlan | FaultInjector | None" = None,
        resilience: "ResiliencePolicy | None" = None,
    ) -> None:
        for seller, capacity in capacities.items():
            if capacity <= 0:
                raise ConfigurationError(
                    f"seller {seller} capacity must be positive, got {capacity}"
                )
        if on_infeasible not in ("raise", "skip"):
            raise ConfigurationError(
                f"on_infeasible must be 'raise' or 'skip', got {on_infeasible!r}"
            )
        self._runner = runner
        self._capacities = dict(capacities)
        self._name = name
        self._payment_rule = payment_rule
        self._on_infeasible = on_infeasible
        self._options = dict(options or {})
        self._injector, self._policy = resolve_fault_args(faults, resilience)
        self._carry: dict[int, int] = {}
        self._chi: dict[int, int] = {seller: 0 for seller in capacities}
        self._rounds: list[RoundResult] = []
        self._beta_observed = math.inf

    @property
    def capacity_used(self) -> dict[int, int]:
        """Cumulative coverage units committed per seller ``χᵢ`` (copy)."""
        return dict(self._chi)

    def remaining_capacity(self, seller: int) -> int | None:
        """Units the seller may still commit; ``None`` if unconstrained."""
        capacity = self._capacities.get(seller)
        if capacity is None:
            return None
        return capacity - self._chi.get(seller, 0)

    def _admissible(self, bid: Bid) -> bool:
        remaining = self.remaining_capacity(bid.seller)
        return remaining is None or bid.size <= remaining

    def process_round(self, instance: WSPInstance) -> RoundResult:
        """Run one round through the wrapped mechanism, updating χ."""
        round_index = len(self._rounds)
        pre_events: list = []
        if self._injector is not None:
            from repro.faults.resilience import apply_pre_round_faults

            instance, pre_events = apply_pre_round_faults(
                instance,
                round_index=round_index,
                injector=self._injector,
                policy=self._policy,
                carry_demand=(
                    self._carry if self._policy.carry_uncovered else None
                ),
            )
            self._carry = {}
        admissible = tuple(
            bid for bid in instance.bids if self._admissible(bid)
        )
        original_by_key = {bid.key: bid for bid in instance.bids}
        reduced = WSPInstance(
            bids=admissible,
            demand=instance.demand,
            price_ceiling=instance.price_ceiling,
        )
        resilience = None
        if self._injector is not None:
            outcome, resilience = self._resilient_round(
                reduced, pre_events=pre_events, round_index=round_index
            )
            if (
                resilience is not None
                and self._policy.carry_uncovered
                and resilience.uncovered
            ):
                for buyer, units in resilience.uncovered.items():
                    self._carry[buyer] = self._carry.get(buyer, 0) + units
        else:
            try:
                outcome = self._runner(reduced, **self._options)
            except InfeasibleInstanceError:
                if self._on_infeasible == "raise":
                    raise
                outcome = _empty_outcome(
                    reduced,
                    mechanism=self._name,
                    payment_rule=self._payment_rule,
                )
        self._beta_observed = min(
            self._beta_observed, capacity_margin(self._capacities, admissible)
        )
        for winner in outcome.winners:
            self._chi[winner.bid.seller] = (
                self._chi.get(winner.bid.seller, 0) + winner.bid.size
            )
        result = RoundResult(
            round_index=round_index,
            outcome=outcome,
            original_bids=original_by_key,
            # No price scaling: selection prices are the announced prices.
            scaled_prices={bid.key: bid.price for bid in admissible},
            psi_after={seller: 0.0 for seller in self._capacities},
            capacity_used=self.capacity_used,
            resilience=resilience,
        )
        self._rounds.append(result)
        return result

    def _resilient_round(
        self,
        reduced: WSPInstance,
        *,
        pre_events: Sequence,
        round_index: int,
    ):
        """Run the round through the fault-recovery engine.

        Mirrors :meth:`MultiStageOnlineAuction._resilient_round`: a
        degradation-policy ``"raise"`` escalation falls back to this
        adapter's ``on_infeasible`` handling.
        """
        from repro.faults.report import RoundResilience
        from repro.faults.resilience import execute_with_resilience

        def runner(inst: WSPInstance) -> AuctionOutcome:
            return self._runner(inst, **self._options)

        try:
            return execute_with_resilience(
                reduced,
                runner,
                round_index=round_index,
                injector=self._injector,
                policy=self._policy,
                pre_events=pre_events,
            )
        except InfeasibleInstanceError:
            if self._on_infeasible == "raise":
                raise
            outcome = _empty_outcome(
                reduced, mechanism=self._name, payment_rule=self._payment_rule
            )
            report = (
                RoundResilience(events=tuple(pre_events))
                if pre_events
                else None
            )
            return outcome, report

    def finalize(self) -> OnlineOutcome:
        """Package the horizon's rounds into an :class:`OnlineOutcome`."""
        outcome = OnlineOutcome(
            rounds=tuple(self._rounds),
            capacities=dict(self._capacities),
            alpha=float("nan"),
            beta=self._beta_observed,
            competitive_bound=float("nan"),
            mechanism=self._name,
        )
        outcome.verify_capacities()
        return outcome
