"""Shard plans: deterministic geographic partitions of the buyer set.

Sharding decomposes one round's winner-selection problem into per-shard
sub-markets that clear independently (see :mod:`repro.shard.ssam`).  A
:class:`ShardPlan` decides, for every buyer (edge cloudlet), which shard
it lives in; a bid is *local* to a shard when every positively-demanded
buyer it covers lives there, and *cross-shard* otherwise.

All plans are deterministic functions of their inputs — no process
randomness — so a sharded run is replayable and the equivalence suite
(``tests/properties/test_shard_equivalence.py``) can compare it
bit-for-bit against unsharded clearing.

Three strategies ship:

* :class:`HashShardPlan` — a stateless multiplicative-hash spread; the
  default, needs no market knowledge.
* :class:`RegionShardPlan` — an explicit buyer→region labelling (the
  "one edge platform per region" deployment of the north star); regions
  map onto shards round-robin in sorted label order.
* :class:`LocalityShardPlan` — adaptive: connected components of the
  buyer co-coverage graph (buyers sharing any bid) are kept whole and
  bin-packed onto shards by demand load, minimizing cross-shard bids.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.bids import Bid
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError

__all__ = [
    "ShardPlan",
    "HashShardPlan",
    "RegionShardPlan",
    "LocalityShardPlan",
    "make_plan",
    "partition_round",
    "ShardPartition",
]

_MIX_MULTIPLIER = 0x9E3779B97F4A7C15  # 2^64 / golden ratio (splitmix64)
_MASK64 = (1 << 64) - 1


def _mix(value: int) -> int:
    """Deterministic 64-bit integer mix (never Python's salted ``hash``)."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


def _validate_shards(n_shards: int) -> None:
    if n_shards < 1:
        raise ConfigurationError(
            f"n_shards must be a positive integer, got {n_shards}"
        )


class ShardPlan:
    """Base contract: a deterministic buyer → shard assignment.

    Static plans implement :meth:`shard_of` directly; adaptive plans
    (locality) override :meth:`for_round` to bind themselves to a
    round's instance first.  ``partition_round`` always calls
    ``plan.for_round(instance)`` before asking for assignments.
    """

    n_shards: int

    def shard_of(self, buyer: int) -> int:
        raise NotImplementedError

    def for_round(self, instance: WSPInstance) -> "ShardPlan":
        """Bind the plan to one round's market (default: already bound)."""
        return self


@dataclass(frozen=True)
class HashShardPlan(ShardPlan):
    """Spread buyers over shards by a deterministic multiplicative hash."""

    n_shards: int

    def __post_init__(self) -> None:
        _validate_shards(self.n_shards)

    def shard_of(self, buyer: int) -> int:
        return _mix(int(buyer) * _MIX_MULTIPLIER & _MASK64) % self.n_shards


@dataclass(frozen=True)
class RegionShardPlan(ShardPlan):
    """Shard by an explicit buyer → region labelling.

    Distinct region labels are sorted and mapped onto shards
    round-robin, so co-located buyers always share a shard and the
    label→shard mapping is independent of dict insertion order.  Buyers
    missing from the map fall back to the hash spread.
    """

    regions: Mapping[int, object]
    n_shards: int

    _shard_by_label: Mapping[object, int] = field(
        init=False, repr=False, compare=False, default=None
    )
    _fallback: HashShardPlan = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        _validate_shards(self.n_shards)
        labels = sorted(set(self.regions.values()), key=repr)
        object.__setattr__(
            self,
            "_shard_by_label",
            {label: i % self.n_shards for i, label in enumerate(labels)},
        )
        object.__setattr__(self, "_fallback", HashShardPlan(self.n_shards))

    def shard_of(self, buyer: int) -> int:
        label = self.regions.get(int(buyer))
        if label is None:
            return self._fallback.shard_of(buyer)
        return self._shard_by_label[label]


@dataclass(frozen=True)
class LocalityShardPlan(ShardPlan):
    """Keep co-covered buyers together; balance components by demand.

    Unbound (``assignment=None``) the plan is a *strategy*:
    :meth:`for_round` computes the connected components of the buyer
    co-coverage graph (buyers linked when one bid covers both), orders
    them deterministically (descending demand load, then smallest
    buyer), and assigns each to the currently least-loaded shard.  When
    every bid's cover set is a single component this yields zero
    cross-shard bids.
    """

    n_shards: int
    assignment: Mapping[int, int] | None = None

    _fallback: HashShardPlan = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        _validate_shards(self.n_shards)
        object.__setattr__(self, "_fallback", HashShardPlan(self.n_shards))

    def shard_of(self, buyer: int) -> int:
        if self.assignment is None:
            raise ConfigurationError(
                "LocalityShardPlan is unbound; call for_round(instance) "
                "(partition_round does this automatically)"
            )
        shard = self.assignment.get(int(buyer))
        if shard is None:
            return self._fallback.shard_of(buyer)
        return shard

    def for_round(self, instance: WSPInstance) -> "LocalityShardPlan":
        if self.assignment is not None:
            return self
        return LocalityShardPlan(
            n_shards=self.n_shards,
            assignment=self._components_assignment(
                instance.bids, instance.demand
            ),
        )

    @classmethod
    def from_bids(
        cls,
        bids: Sequence[Bid],
        demand: Mapping[int, int],
        n_shards: int,
    ) -> "LocalityShardPlan":
        """Bind a plan directly from a bid list and demand map."""
        plan = cls(n_shards=n_shards)
        return LocalityShardPlan(
            n_shards=n_shards,
            assignment=plan._components_assignment(bids, demand),
        )

    def _components_assignment(
        self, bids: Sequence[Bid], demand: Mapping[int, int]
    ) -> dict[int, int]:
        positive = sorted(b for b, u in demand.items() if u > 0)
        parent = {b: b for b in positive}

        def find(b: int) -> int:
            root = b
            while parent[root] != root:
                root = parent[root]
            while parent[b] != root:
                parent[b], b = root, parent[b]
            return root

        for bid in bids:
            touched = [b for b in bid.covered if b in parent]
            for other in touched[1:]:
                ra, rb = find(touched[0]), find(other)
                if ra != rb:
                    # Deterministic union: smaller buyer id wins as root.
                    if rb < ra:
                        ra, rb = rb, ra
                    parent[rb] = ra
        components: dict[int, list[int]] = {}
        for b in positive:
            components.setdefault(find(b), []).append(b)
        ordered = sorted(
            components.values(),
            key=lambda members: (
                -sum(demand[b] for b in members),
                members[0],
            ),
        )
        loads = [0] * self.n_shards
        assignment: dict[int, int] = {}
        for members in ordered:
            shard = min(range(self.n_shards), key=lambda s: (loads[s], s))
            loads[shard] += sum(demand[b] for b in members)
            for b in members:
                assignment[b] = shard
        return assignment


_STRATEGIES = ("hash", "region", "locality")


def make_plan(
    strategy: str,
    n_shards: int,
    *,
    regions: Mapping[int, object] | None = None,
) -> ShardPlan:
    """Build a plan from a CLI/config-level strategy name."""
    if strategy not in _STRATEGIES:
        raise ConfigurationError(
            f"shard strategy must be one of {_STRATEGIES}, got {strategy!r}"
        )
    if strategy == "hash":
        return HashShardPlan(n_shards)
    if strategy == "region":
        if regions is None:
            raise ConfigurationError(
                "shard strategy 'region' needs a buyer→region mapping"
            )
        return RegionShardPlan(regions=dict(regions), n_shards=n_shards)
    return LocalityShardPlan(n_shards=n_shards)


@dataclass(frozen=True)
class ShardPartition:
    """One round's deterministic decomposition under a bound plan.

    Attributes
    ----------
    plan:
        The bound plan that produced the partition.
    shard_demand:
        Per shard, the positive-demand restriction ``{buyer: units}`` in
        the parent demand map's key order.
    local_bids / local_rows:
        Per shard, the bids whose positively-demanded cover lives wholly
        in that shard (original bid order) and their row indices into
        ``instance.bids``.  Bids covering no positive demand (inert:
        they can never be selected) are assigned to the shard of their
        smallest covered buyer.
    cross_bids / cross_rows:
        Bids whose positively-demanded cover spans ≥ 2 shards, cleared
        in the reconciliation pass.
    price_ceiling:
        The parent's *effective* ceiling, pinned so every sub-market
        prices pivotal winners against the same public ceiling the
        unsharded run would use.
    """

    plan: ShardPlan
    shard_demand: tuple[Mapping[int, int], ...]
    local_bids: tuple[tuple[Bid, ...], ...]
    local_rows: tuple[tuple[int, ...], ...]
    cross_bids: tuple[Bid, ...]
    cross_rows: tuple[int, ...]
    price_ceiling: float | None

    @property
    def n_shards(self) -> int:
        return len(self.shard_demand)

    @property
    def active_shards(self) -> tuple[int, ...]:
        """Shards holding any positive demand."""
        return tuple(
            s for s, demand in enumerate(self.shard_demand) if demand
        )

    def sub_instance(self, shard: int) -> WSPInstance:
        """The shard's local sub-market (validation-free construction:
        local bids may cover zero-demand buyers outside the shard)."""
        return WSPInstance(
            bids=self.local_bids[shard],
            demand=dict(self.shard_demand[shard]),
            price_ceiling=self.price_ceiling,
        )


def partition_round(
    instance: WSPInstance, plan: ShardPlan
) -> ShardPartition:
    """Decompose one round's instance under ``plan`` (bound per round)."""
    plan = plan.for_round(instance)
    n_shards = plan.n_shards
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    shard_by_buyer = {b: plan.shard_of(b) for b in demand}
    shard_demand: list[dict[int, int]] = [{} for _ in range(n_shards)]
    for buyer, units in demand.items():
        shard_demand[shard_by_buyer[buyer]][buyer] = units
    # Pass 1: classify each bid by the shards its positive cover touches.
    assigned: list[int | None] = []  # shard id, or None for cross-shard
    inert: list[bool] = []
    for bid in instance.bids:
        touched = {
            shard_by_buyer[b] for b in bid.covered if b in shard_by_buyer
        }
        if len(touched) > 1:
            assigned.append(None)
            inert.append(False)
        elif touched:
            assigned.append(next(iter(touched)))
            inert.append(False)
        else:
            # Inert bid (covers no positive demand): park it anywhere
            # deterministic — it can never be selected.
            assigned.append(
                plan.shard_of(min(bid.covered)) if bid.covered else 0
            )
            inert.append(True)
    # Pass 2: a seller with live local bids in two different shards could
    # win once per shard under independent clearing, violating SSAM's
    # one-bid-per-seller rule.  Its live bids are seller-coupled even
    # though each is single-shard, so they all move to reconciliation.
    seller_shards: dict[int, set[int]] = {}
    for bid, shard, is_inert in zip(instance.bids, assigned, inert):
        if shard is not None and not is_inert:
            seller_shards.setdefault(bid.seller, set()).add(shard)
    coupled = {s for s, shards in seller_shards.items() if len(shards) > 1}
    local_bids: list[list[Bid]] = [[] for _ in range(n_shards)]
    local_rows: list[list[int]] = [[] for _ in range(n_shards)]
    cross_bids: list[Bid] = []
    cross_rows: list[int] = []
    for row, (bid, shard, is_inert) in enumerate(
        zip(instance.bids, assigned, inert)
    ):
        if shard is None or (not is_inert and bid.seller in coupled):
            cross_bids.append(bid)
            cross_rows.append(row)
        else:
            local_bids[shard].append(bid)
            local_rows[shard].append(row)
    ceiling = instance.price_ceiling
    if ceiling is None and instance.bids:
        ceiling = instance.effective_ceiling
    return ShardPartition(
        plan=plan,
        shard_demand=tuple(shard_demand),
        local_bids=tuple(tuple(bids) for bids in local_bids),
        local_rows=tuple(tuple(rows) for rows in local_rows),
        cross_bids=tuple(cross_bids),
        cross_rows=tuple(cross_rows),
        price_ceiling=ceiling,
    )
