"""Sharded MSOA: the online auctioneer over sharded round clearing.

:class:`ShardedOnlineAuction` subclasses
:class:`~repro.core.msoa.MultiStageOnlineAuction` and overrides exactly
one method — the ``_execute_ssam`` clearing seam — so the admissibility
filter, ψ/χ updates, α estimation, fault injection and resilience
machinery are *shared code*, not reimplementations.  With one shard the
seam degenerates to the parent's plain :func:`~repro.core.ssam.run_ssam`
call, which is why the 1-shard ≡ unsharded equivalence certified by
``tests/properties/test_shard_equivalence.py`` holds bit-for-bit even
under seeded fault plans.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

from repro.core.msoa import MultiStageOnlineAuction
from repro.core.outcomes import OnlineOutcome
from repro.core.ssam import PaymentRule
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError
from repro.shard.plan import ShardPlan, make_plan
from repro.shard.ssam import ShardRoundStats, run_sharded_ssam

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults → core)
    from repro.faults.injector import FaultInjector
    from repro.faults.models import FaultPlan
    from repro.faults.policies import ResiliencePolicy

__all__ = ["ShardedOnlineAuction", "run_sharded_msoa"]


class ShardedOnlineAuction(MultiStageOnlineAuction):
    """MSOA whose rounds clear through the sharded two-pass pipeline.

    Parameters
    ----------
    capacities, **msoa options:
        Exactly as :class:`~repro.core.msoa.MultiStageOnlineAuction`.
        ``columnar_incremental`` is accepted but inert here: per-shard
        layouts are forked fresh from one parent build each round (the
        cross-round price-refresh cache assumes a single global layout).
    plan:
        A bound :class:`~repro.shard.plan.ShardPlan`.  Mutually
        exclusive with ``shards``/``shard_strategy``.
    shards / shard_strategy:
        Convenience constructor: ``make_plan(shard_strategy, shards)``.
    shard_workers:
        Local-pass worker threads per round (``"auto"`` sizes from CPUs,
        capped at active shards; observability-enabled runs stay serial
        for reproducible traces).
    """

    def __init__(
        self,
        capacities: Mapping[int, int],
        *,
        plan: ShardPlan | None = None,
        shards: int | None = None,
        shard_strategy: str = "hash",
        shard_workers: int | str = "auto",
        **msoa_options,
    ) -> None:
        if plan is not None and shards is not None:
            raise ConfigurationError(
                "pass either a bound plan or shards/shard_strategy, not both"
            )
        if plan is None:
            plan = make_plan(shard_strategy, shards if shards is not None else 1)
        super().__init__(capacities, **msoa_options)
        self._plan = plan
        self._shard_workers = shard_workers
        self._shard_stats: list[ShardRoundStats] = []

    @property
    def plan(self) -> ShardPlan:
        return self._plan

    @property
    def shard_stats(self) -> tuple[ShardRoundStats, ...]:
        """Per-clearing stats, one entry per ``_execute_ssam`` call.

        Note: a fault-retried round clears more than once, so this is
        aligned with clearing executions, not with ``rounds``.
        """
        return tuple(self._shard_stats)

    def _execute_ssam(
        self,
        instance: WSPInstance,
        *,
        original_prices: Mapping[tuple[int, int], float] | None = None,
    ):
        result = run_sharded_ssam(
            instance,
            self._plan,
            payment_rule=self._payment_rule,
            original_prices=original_prices,
            shard_workers=self._shard_workers,
            **self._ssam_options,
        )
        self._shard_stats.append(result.stats)
        return result.outcome


def run_sharded_msoa(
    rounds: Iterable[WSPInstance] | Sequence[WSPInstance],
    capacities: Mapping[int, int],
    *,
    shards: int | None = None,
    shard_strategy: str = "hash",
    plan: ShardPlan | None = None,
    shard_workers: int | str = "auto",
    alpha: float | None = None,
    payment_rule: PaymentRule = PaymentRule.CRITICAL_RERUN,
    parallelism: int | str = "auto",
    guard: bool = True,
    engine: str = "fast",
    on_infeasible: str = "raise",
    faults: "FaultPlan | FaultInjector | None" = None,
    resilience: "ResiliencePolicy | None" = None,
) -> OnlineOutcome:
    """Sharded twin of :func:`~repro.core.msoa.run_msoa`.

    Accepts any iterable of rounds — including the bounded-memory
    streams from :mod:`repro.shard.streaming` — and processes them
    strictly online.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.workload import MarketConfig, generate_horizon
    >>> from repro.shard import run_sharded_msoa
    >>> rounds, capacities = generate_horizon(
    ...     MarketConfig(), np.random.default_rng(7), rounds=3)
    >>> outcome = run_sharded_msoa(rounds, capacities, shards=2)
    >>> len(outcome.rounds)
    3
    """
    auction = ShardedOnlineAuction(
        capacities,
        plan=plan,
        shards=shards,
        shard_strategy=shard_strategy,
        shard_workers=shard_workers,
        alpha=alpha,
        payment_rule=payment_rule,
        parallelism=parallelism,
        guard=guard,
        engine=engine,
        on_infeasible=on_infeasible,
        faults=faults,
        resilience=resilience,
    )
    for instance in rounds:
        auction.process_round(instance)
    return auction.finalize()
