"""Streaming round assembly: bounded-memory markets at 10^6-unit scale.

Two streaming layers compose with the sharded auctioneer:

* :func:`stream_rounds` — a *lazy, region-structured market generator*.
  Each round is synthesized vectorized (numpy draws, no per-bid Python
  RNG calls) and yielded one at a time, so a horizon totalling millions
  of demand units never materializes more than one round of bids.
  Regions map one-to-one onto shards via :func:`region_plan`, and a
  configurable fraction of sellers place *cross-region* bids — exactly
  the bids the reconciliation pass exists for.
* :class:`RoundAssembler` / :func:`serve_streaming` — *time-stamped bid
  ingestion* for the platform loop: bids arrive as a stream of
  ``(timestamp, bid)`` events drawn from a :mod:`repro.workload` arrival
  process; the assembler buckets them into rounds holding only the open
  round in memory, and the driver feeds each closed bucket through
  ``EdgePlatform.begin_round``/``complete_round``.  A bid stamped after
  its round's deadline genuinely missed the auction — it is dropped and
  counted (``shard.stream_late_bids``), mirroring the distributed
  orchestrator's late-bid rule.

Long streamed runs pair naturally with the bounded tracer modes
(``--trace-limit``/``--trace-sample``): tracing stays O(limit), not
O(rounds).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.bids import Bid
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError
from repro.obs.runtime import STATE as _OBS
from repro.shard.plan import RegionShardPlan

__all__ = [
    "StreamConfig",
    "stream_rounds",
    "stream_capacities",
    "region_plan",
    "RoundAssembler",
    "serve_streaming",
]

_SELLER_BASE = 1_000_000  # seller ids live far above buyer ids


@dataclass(frozen=True)
class StreamConfig:
    """Shape of a region-structured streamed market.

    ``rounds × regions × buyers_per_region × mean(demand_range)`` is the
    horizon's total demand-unit volume — size these to hit a target
    scale (the 10^6-unit bench case uses 1000 × 16 × 25 × 2.5).  Many
    small rounds beat few huge ones: per-round clearing cost grows
    superlinearly in winners per shard, so for a fixed unit volume the
    cheapest shape minimizes demand per shard-round.
    """

    rounds: int = 20
    regions: int = 4
    buyers_per_region: int = 25
    sellers_per_region: int = 60
    demand_range: tuple[int, int] = (1, 3)
    coverage_range: tuple[int, int] = (1, 3)
    price_range: tuple[float, float] = (10.0, 35.0)
    price_ceiling: float = 50.0
    cross_region_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.rounds < 1 or self.regions < 1:
            raise ConfigurationError("rounds and regions must be positive")
        if self.buyers_per_region < 1 or self.sellers_per_region < 1:
            raise ConfigurationError(
                "buyers_per_region and sellers_per_region must be positive"
            )
        low, high = self.demand_range
        if not 1 <= low <= high:
            raise ConfigurationError(
                f"invalid demand_range {self.demand_range}"
            )
        if self.sellers_per_region < high:
            raise ConfigurationError(
                "each region needs at least max-demand sellers to be "
                "locally feasible"
            )
        c_low, c_high = self.coverage_range
        if not 1 <= c_low <= c_high <= self.buyers_per_region:
            raise ConfigurationError(
                f"invalid coverage_range {self.coverage_range}"
            )
        p_low, p_high = self.price_range
        if not 0 < p_low <= p_high <= self.price_ceiling:
            raise ConfigurationError(
                "price_range must be positive and below the ceiling"
            )
        if not 0.0 <= self.cross_region_fraction <= 1.0:
            raise ConfigurationError(
                "cross_region_fraction must be within [0, 1]"
            )

    @property
    def n_buyers(self) -> int:
        return self.regions * self.buyers_per_region

    @property
    def n_sellers(self) -> int:
        return self.regions * self.sellers_per_region

    @property
    def expected_demand_units(self) -> int:
        """Expected horizon demand volume (for scale-case sizing)."""
        low, high = self.demand_range
        return round(self.rounds * self.n_buyers * (low + high) / 2)

    def buyer_region(self, buyer: int) -> int:
        return int(buyer) // self.buyers_per_region

    def region_map(self) -> dict[int, int]:
        return {b: self.buyer_region(b) for b in range(self.n_buyers)}


def region_plan(config: StreamConfig, n_shards: int | None = None) -> RegionShardPlan:
    """The matching shard plan: one region per shard (or folded onto
    ``n_shards`` round-robin)."""
    return RegionShardPlan(
        regions=config.region_map(),
        n_shards=n_shards if n_shards is not None else config.regions,
    )


def stream_capacities(config: StreamConfig) -> dict[int, int]:
    """Long-run share capacities Θᵢ: ample but finite, so ψ scarcity
    pricing engages without starving the horizon."""
    per_round = config.coverage_range[1] + 1
    return {
        _SELLER_BASE + s: config.rounds * per_round
        for s in range(config.n_sellers)
    }


def _round_instance(
    config: StreamConfig, rng: np.random.Generator
) -> WSPInstance:
    """Synthesize one round, vectorized, feasible per region by repair."""
    bpr = config.buyers_per_region
    spr = config.sellers_per_region
    d_low, d_high = config.demand_range
    c_low, c_high = config.coverage_range
    p_low, p_high = config.price_range
    demand_units = rng.integers(
        d_low, d_high + 1, size=config.n_buyers, dtype=np.int64
    )
    bids: list[Bid] = []
    for region in range(config.regions):
        buyers0 = region * bpr
        # Each region seller offers one bid over k in-region buyers:
        # rank a random matrix per row and take the first k columns.
        ks = rng.integers(c_low, c_high + 1, size=spr)
        order = np.argsort(rng.random((spr, bpr)), axis=1)
        cover = np.zeros((spr, bpr), dtype=bool)
        for k in range(c_low, c_high + 1):
            rows = np.flatnonzero(ks == k)
            if rows.size:
                cover[rows[:, None], order[rows, :k]] = True
        crossing = (
            rng.random(spr) < config.cross_region_fraction
            if config.regions > 1
            else np.zeros(spr, dtype=bool)
        )
        # Feasibility repair: every buyer needs >= demand distinct
        # covering sellers (one bid per seller here).  Crossing sellers
        # don't count — their bids span two shards, so the sharded local
        # pass cannot use them; repairing against non-crossing sellers
        # keeps every shard-local sub-market feasible on its own.
        counts = (cover & ~crossing[:, None]).sum(axis=0)
        need = demand_units[buyers0 : buyers0 + bpr]
        for col in np.flatnonzero(counts < need):
            free = np.flatnonzero(~cover[:, col] & ~crossing)
            take = rng.permutation(free)[: int(need[col] - counts[col])]
            cover[take, col] = True
        prices = rng.uniform(p_low, p_high, size=spr)
        next_region = (region + 1) % config.regions
        extra = rng.integers(0, bpr, size=spr)
        rows_cov, cols_cov = np.nonzero(cover)
        split = np.searchsorted(rows_cov, np.arange(spr + 1))
        for s in range(spr):
            covered = {
                int(buyers0 + c) for c in cols_cov[split[s] : split[s + 1]]
            }
            if crossing[s]:
                covered.add(int(next_region * bpr + extra[s]))
            price = float(prices[s])
            bids.append(
                Bid(
                    seller=_SELLER_BASE + region * spr + s,
                    index=0,
                    covered=frozenset(covered),
                    price=price,
                    true_cost=price,
                )
            )
    demand = {b: int(u) for b, u in enumerate(demand_units)}
    return WSPInstance(
        bids=tuple(bids),
        demand=demand,
        price_ceiling=config.price_ceiling,
    )


def stream_rounds(
    config: StreamConfig, rng: np.random.Generator
) -> Iterator[WSPInstance]:
    """Yield the horizon's rounds lazily — one round resident at a time."""
    for _ in range(config.rounds):
        yield _round_instance(config, rng)


class RoundAssembler:
    """Bucket a time-stamped bid stream into auction rounds.

    Holds exactly one open round in memory.  ``push`` returns the closed
    round's batch whenever the incoming timestamp crosses a round
    boundary (possibly several empty rounds in between); ``flush``
    closes the final round.  Bids stamped *before* the open round (the
    stream ran ahead) are late: dropped and counted.
    """

    def __init__(self, round_length: float, start: float = 0.0) -> None:
        if round_length <= 0:
            raise ConfigurationError("round_length must be positive")
        self.round_length = float(round_length)
        self.round_index = 0
        self._open_start = float(start)
        self._open: list[Bid] = []
        self.late_bids = 0

    @property
    def open_deadline(self) -> float:
        return self._open_start + self.round_length

    def push(self, timestamp: float, bid: Bid) -> list[tuple[int, list[Bid]]]:
        """Ingest one event; return any rounds it closed, in order."""
        closed: list[tuple[int, list[Bid]]] = []
        if timestamp < self._open_start:
            self.late_bids += 1
            if _OBS.enabled:
                _OBS.metrics.counter("shard.stream_late_bids").inc()
            return closed
        while timestamp >= self.open_deadline:
            closed.append((self.round_index, self._open))
            self._open = []
            self.round_index += 1
            self._open_start += self.round_length
        self._open.append(bid)
        return closed

    def flush(self) -> tuple[int, list[Bid]]:
        """Close the open round (end of stream)."""
        batch = (self.round_index, self._open)
        self._open = []
        self.round_index += 1
        self._open_start += self.round_length
        return batch


def serve_streaming(
    platform,
    *,
    rounds: int,
    arrivals=None,
    rng: np.random.Generator | None = None,
) -> list:
    """Drive an :class:`~repro.edge.platform.EdgePlatform` from a
    streamed bid feed.

    Each round the platform opens as usual (``begin_round`` simulates
    and announces demand), the configured bidding policy's bids are
    emitted as a *stream* stamped by ``arrivals`` (default: uniform over
    the round window), and only the bids whose stamps beat the round
    deadline reach ``complete_round`` — late arrivals are dropped and
    counted, exactly like the distributed orchestrator's grace rule.

    Returns the per-round :class:`PlatformRoundReport` list.
    """
    rng = rng if rng is not None else np.random.default_rng()
    reports = []
    round_length = platform.config.round_length
    for index in range(rounds):
        context = platform.begin_round()
        bids = platform.collect_bids(context)
        if arrivals is not None:
            stamps = np.sort(
                np.asarray(arrivals.sample(round_length, rng), dtype=float)
            )
        else:
            stamps = np.sort(rng.uniform(0.0, round_length, size=len(bids)))
        # Bid `i` rides arrival slot `i`; a bid with no slot before the
        # deadline genuinely missed the round.
        events = (
            (float(stamps[i]) if i < stamps.size else round_length, bid)
            for i, bid in enumerate(bids)
        )
        assembler = RoundAssembler(round_length)
        on_time: list[Bid] = []
        for timestamp, bid in events:
            if timestamp < round_length:
                for _, batch in assembler.push(timestamp, bid):
                    on_time.extend(batch)
            else:
                assembler.late_bids += 1
                if _OBS.enabled:
                    _OBS.metrics.counter("shard.stream_late_bids").inc()
        on_time.extend(assembler.flush()[1])
        if _OBS.enabled:
            _OBS.metrics.counter("shard.stream_rounds").inc()
            _OBS.metrics.counter("shard.stream_bids").inc(len(on_time))
            _OBS.tracer.event(
                "stream-round",
                round_index=index,
                bids=len(bids),
                on_time=len(on_time),
                late=assembler.late_bids,
            )
        reports.append(platform.complete_round(context, on_time))
    return reports


def assemble_bid_stream(
    events: Iterable[tuple[float, Bid]], round_length: float
) -> Iterator[tuple[int, list[Bid]]]:
    """Generator view of :class:`RoundAssembler` over a whole stream."""
    assembler = RoundAssembler(round_length)
    for timestamp, bid in events:
        yield from assembler.push(float(timestamp), bid)
    yield assembler.flush()


def total_demand_units(rounds: Iterable[Mapping[int, int] | WSPInstance]) -> int:
    """Total positive demand units across rounds (scale-case reporting)."""
    total = 0
    for item in rounds:
        demand = item.demand if isinstance(item, WSPInstance) else item
        total += sum(u for u in demand.values() if u > 0)
    return total
