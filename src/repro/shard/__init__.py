"""Sharded, streaming MSOA: geographic decomposition of the auction.

The scaling layer for ROADMAP item 3.  A :class:`ShardPlan` partitions
buyers (edge cloudlets) into shards; each round clears shard-locally in
parallel and reconciles cross-shard bids in a deterministic second pass
(:func:`run_sharded_ssam`), under the unchanged MSOA ψ/χ state machine
(:class:`ShardedOnlineAuction`).  :mod:`repro.shard.streaming` feeds the
auctioneer bounded-memory round streams at 10^6-demand-unit scale.

Equivalence contract (certified by
``tests/properties/test_shard_equivalence.py``): with one shard — or
whenever the whole market lands in a single shard — the sharded path is
bit-identical to unsharded MSOA on every engine, including under seeded
fault plans; with no cross-shard bids an N-shard run equals the union of
the independent per-shard runs.  See ``docs/scaling.md``.
"""

from repro.shard.msoa import ShardedOnlineAuction, run_sharded_msoa
from repro.shard.plan import (
    HashShardPlan,
    LocalityShardPlan,
    RegionShardPlan,
    ShardPartition,
    ShardPlan,
    make_plan,
    partition_round,
)
from repro.shard.ssam import (
    ShardedRoundOutcome,
    ShardRoundStats,
    run_sharded_ssam,
)
from repro.shard.streaming import (
    RoundAssembler,
    StreamConfig,
    region_plan,
    serve_streaming,
    stream_capacities,
    stream_rounds,
)

__all__ = [
    "ShardPlan",
    "HashShardPlan",
    "RegionShardPlan",
    "LocalityShardPlan",
    "make_plan",
    "partition_round",
    "ShardPartition",
    "run_sharded_ssam",
    "ShardedRoundOutcome",
    "ShardRoundStats",
    "ShardedOnlineAuction",
    "run_sharded_msoa",
    "StreamConfig",
    "stream_rounds",
    "stream_capacities",
    "region_plan",
    "RoundAssembler",
    "serve_streaming",
]
