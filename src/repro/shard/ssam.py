"""Sharded single-round clearing: per-shard SSAM + deterministic reconciliation.

One round's market is decomposed by a :class:`~repro.shard.plan.ShardPlan`
(:func:`~repro.shard.plan.partition_round`) and cleared in two passes:

1. **Local pass** — every shard with positive demand runs plain
   :func:`~repro.core.ssam.run_ssam` on its sub-market, concurrently
   when shard workers are available.  A locally infeasible shard (its
   buyers need cross-shard supply) clamps demand to what its own bids
   can cover — the remainder becomes *residual*.
2. **Reconciliation pass** — cross-shard bids (cover spanning shards, or
   seller-coupled across shards) are cleared against the merged residual
   demand, excluding sellers that already won locally, so the global
   one-bid-per-seller rule survives the decomposition.

Merging is deterministic: winners are concatenated in shard order, then
reconciliation order, with iterations renumbered sequentially; dual unit
tags merge the same way.  When the whole market lands in one shard the
runner short-circuits to a single ``run_ssam`` call on the *original*
instance — which makes "1 shard ≡ unsharded" a structural identity, not
a numerical coincidence (``tests/properties/test_shard_equivalence.py``
still certifies it bit-for-bit).

Known semantic trade-off, by design: the two-pass decomposition is not
feasibility-complete.  A market that is globally feasible only through a
joint local+cross allocation can come up short after reconciliation; the
runner then raises :class:`~repro.errors.InfeasibleInstanceError` exactly
like an unsharded infeasible round, deferring to MSOA's ``on_infeasible``
policy.  See ``docs/scaling.md``.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.duals import DualSolution
from repro.core.outcomes import AuctionOutcome, WinningBid
from repro.core.ratios import ssam_ratio_bound
from repro.core.ssam import PaymentRule, run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError, InfeasibleInstanceError
from repro.obs.profiler import profiled
from repro.obs.runtime import STATE as _OBS
from repro.shard.plan import ShardPartition, ShardPlan, partition_round

__all__ = [
    "ShardRoundStats",
    "ShardedRoundOutcome",
    "run_sharded_ssam",
    "resolve_shard_workers",
]


@dataclass(frozen=True)
class ShardRoundStats:
    """Observability summary of one sharded round."""

    n_shards: int
    active_shards: int
    local_bids: int
    cross_bids: int
    local_winners: int
    cross_winners: int
    clamped_shards: int
    fast_path: bool
    shard_ms: tuple[float, ...]
    reconcile_ms: float

    def to_dict(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "active_shards": self.active_shards,
            "local_bids": self.local_bids,
            "cross_bids": self.cross_bids,
            "local_winners": self.local_winners,
            "cross_winners": self.cross_winners,
            "clamped_shards": self.clamped_shards,
            "fast_path": self.fast_path,
            "shard_ms": list(self.shard_ms),
            "reconcile_ms": self.reconcile_ms,
        }


@dataclass(frozen=True)
class ShardedRoundOutcome:
    """A merged round outcome plus its per-shard provenance."""

    outcome: AuctionOutcome
    shard_outcomes: tuple[AuctionOutcome | None, ...]
    cross_outcome: AuctionOutcome | None
    partition: ShardPartition
    stats: ShardRoundStats


def resolve_shard_workers(shard_workers: int | str, active: int) -> int:
    """Worker threads for the local pass (1 = serial, deterministic order
    either way).  ``"auto"`` sizes from CPUs, capped at active shards;
    tracing forces serial so span/event order stays reproducible."""
    if shard_workers == "auto":
        import os

        workers = min(os.cpu_count() or 1, active)
    elif isinstance(shard_workers, int) and shard_workers >= 1:
        workers = min(shard_workers, max(1, active))
    else:
        raise ConfigurationError(
            "shard_workers must be 'auto' or a positive integer, "
            f"got {shard_workers!r}"
        )
    if _OBS.enabled:
        return 1
    return workers


def _clamp_to_local_supply(sub: WSPInstance) -> dict[int, int]:
    """Clamp each buyer to the distinct local sellers covering it."""
    sellers_covering: dict[int, set[int]] = {}
    for bid in sub.bids:
        for buyer in bid.covered:
            sellers_covering.setdefault(buyer, set()).add(bid.seller)
    return {
        buyer: min(units, len(sellers_covering.get(buyer, ())))
        for buyer, units in sub.demand.items()
    }


def _empty_outcome(
    bids: tuple, payment_rule: PaymentRule, **options
) -> AuctionOutcome:
    return run_ssam(
        WSPInstance(bids=bids, demand={}, price_ceiling=None),
        payment_rule=payment_rule,
        **options,
    )


def _clear_local(
    sub: WSPInstance,
    *,
    payment_rule: PaymentRule,
    original_prices: Mapping | None,
    columnar,
    **options,
) -> tuple[AuctionOutcome, bool]:
    """Clear one shard; never raises — unmet demand becomes residual."""
    try:
        return (
            run_ssam(
                sub,
                payment_rule=payment_rule,
                original_prices=original_prices,
                columnar=columnar,
                **options,
            ),
            False,
        )
    except InfeasibleInstanceError:
        pass
    clamped = _clamp_to_local_supply(sub)
    if clamped != dict(sub.demand):
        try:
            return (
                run_ssam(
                    WSPInstance(
                        bids=sub.bids,
                        demand=clamped,
                        price_ceiling=sub.price_ceiling,
                    ),
                    payment_rule=payment_rule,
                    original_prices=original_prices,
                    # Clamping changes the demand vector, so a prebuilt
                    # layout no longer matches; rebuild inside run_ssam.
                    **options,
                ),
                True,
            )
        except InfeasibleInstanceError:
            pass
    return _empty_outcome(sub.bids, payment_rule, **options), True


@profiled("shard.round")
def run_sharded_ssam(
    instance: WSPInstance,
    plan: ShardPlan,
    *,
    payment_rule: PaymentRule = PaymentRule.CRITICAL_RERUN,
    parallelism: int | str = "auto",
    guard: bool = True,
    engine: str = "fast",
    original_prices: Mapping[tuple[int, int], float] | None = None,
    shard_workers: int | str = "auto",
    require_feasible: bool = True,
) -> ShardedRoundOutcome:
    """Clear one round through the sharded two-pass pipeline.

    Parameters mirror :func:`~repro.core.ssam.run_ssam`; ``plan`` picks
    the decomposition and ``shard_workers`` the local-pass concurrency.
    With ``require_feasible=False`` a post-reconciliation shortfall
    yields a partial (degraded) outcome instead of raising.
    """
    partition = partition_round(instance, plan)
    active = partition.active_shards
    stats_common = {
        "n_shards": partition.n_shards,
        "active_shards": len(active),
        "local_bids": sum(len(b) for b in partition.local_bids),
        "cross_bids": len(partition.cross_bids),
    }
    options = {"parallelism": parallelism, "guard": guard, "engine": engine}
    if len(active) <= 1 and not partition.cross_bids:
        # Degenerate decomposition: the whole market lives in one shard.
        # Clear the ORIGINAL instance with plain run_ssam — the sharded
        # and unsharded paths are literally the same call here, which is
        # what the 1-shard ≡ unsharded bit-identity property pins down.
        started = time.perf_counter()
        outcome = run_ssam(
            instance,
            payment_rule=payment_rule,
            original_prices=(
                dict(original_prices) if original_prices is not None else None
            ),
            **options,
        )
        elapsed_ms = (time.perf_counter() - started) * 1e3
        stats = ShardRoundStats(
            **stats_common,
            local_winners=len(outcome.winners),
            cross_winners=0,
            clamped_shards=0,
            fast_path=True,
            shard_ms=(elapsed_ms,),
            reconcile_ms=0.0,
        )
        _record_stats(stats)
        placed: list[AuctionOutcome | None] = [None] * partition.n_shards
        if active:
            placed[active[0]] = outcome
        return ShardedRoundOutcome(
            outcome=outcome,
            shard_outcomes=tuple(placed),
            cross_outcome=None,
            partition=partition,
            stats=stats,
        )

    original = dict(original_prices) if original_prices is not None else None
    demand = {b: u for b, u in instance.demand.items() if u > 0}

    # Shared columnar layout: one parent build, per-shard slices.
    columnar_views: dict[int, object] = {}
    if engine == "columnar" and demand:
        from repro.core.columnar import ColumnarInstance

        parent = ColumnarInstance.build(instance.bids, demand)
        for shard in active:
            columnar_views[shard] = parent.subset(
                partition.local_rows[shard],
                list(partition.shard_demand[shard]),
            )

    inner = dict(options)
    workers = resolve_shard_workers(shard_workers, len(active))
    if workers > 1:
        # The payment replays may use a process pool; never nest one
        # inside the shard thread pool.
        inner["parallelism"] = 1

    def clear(shard: int) -> tuple[AuctionOutcome, bool, float]:
        started = time.perf_counter()
        outcome, clamped = _clear_local(
            partition.sub_instance(shard),
            payment_rule=payment_rule,
            original_prices=original,
            columnar=columnar_views.get(shard),
            **inner,
        )
        return outcome, clamped, (time.perf_counter() - started) * 1e3

    if workers > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            cleared = list(pool.map(clear, active))
    else:
        cleared = [clear(shard) for shard in active]

    shard_outcomes: list[AuctionOutcome | None] = [None] * partition.n_shards
    clamped_shards = 0
    shard_ms: list[float] = []
    for shard, (outcome, clamped, elapsed) in zip(active, cleared):
        shard_outcomes[shard] = outcome
        clamped_shards += int(clamped)
        shard_ms.append(elapsed)

    # Residual demand after the local pass.
    granted: dict[int, int] = dict.fromkeys(demand, 0)
    local_winner_sellers: set[int] = set()
    local_winners = 0
    for outcome in shard_outcomes:
        if outcome is None:
            continue
        local_winners += len(outcome.winners)
        for winner in outcome.winners:
            local_winner_sellers.add(winner.bid.seller)
            for buyer in winner.bid.covered:
                if buyer in granted:
                    granted[buyer] += 1
    residual = {
        b: u - granted[b] for b, u in demand.items() if u - granted[b] > 0
    }

    cross_outcome: AuctionOutcome | None = None
    reconcile_ms = 0.0
    if residual or partition.cross_bids:
        started = time.perf_counter()
        eligible = tuple(
            bid
            for bid in partition.cross_bids
            if bid.seller not in local_winner_sellers
        )
        if residual:
            recon_instance = WSPInstance(
                bids=eligible,
                demand=residual,
                price_ceiling=partition.price_ceiling,
            )
            try:
                cross_outcome = run_ssam(
                    recon_instance,
                    payment_rule=payment_rule,
                    original_prices=original,
                    **inner,
                )
            except InfeasibleInstanceError:
                if require_feasible:
                    raise InfeasibleInstanceError(
                        "sharded reconciliation cannot cover "
                        f"{sum(residual.values())} residual demand units "
                        f"with {len(eligible)} eligible cross-shard bids"
                    ) from None
                cross_outcome, _ = _clear_local(
                    recon_instance,
                    payment_rule=payment_rule,
                    original_prices=original,
                    columnar=None,
                    **inner,
                )
        elif eligible:
            # Nothing left to serve: cross-shard bids all lose.
            cross_outcome = _empty_outcome(eligible, payment_rule, **inner)
        reconcile_ms = (time.perf_counter() - started) * 1e3

    merged = _merge_outcomes(
        instance,
        [o for o in shard_outcomes if o is not None],
        cross_outcome,
        payment_rule=payment_rule,
    )
    stats = ShardRoundStats(
        **stats_common,
        local_winners=local_winners,
        cross_winners=(
            len(cross_outcome.winners) if cross_outcome is not None else 0
        ),
        clamped_shards=clamped_shards,
        fast_path=False,
        shard_ms=tuple(shard_ms),
        reconcile_ms=reconcile_ms,
    )
    _record_stats(stats)
    return ShardedRoundOutcome(
        outcome=merged,
        shard_outcomes=tuple(shard_outcomes),
        cross_outcome=cross_outcome,
        partition=partition,
        stats=stats,
    )


def _merge_outcomes(
    instance: WSPInstance,
    shard_outcomes: list[AuctionOutcome],
    cross_outcome: AuctionOutcome | None,
    *,
    payment_rule: PaymentRule,
) -> AuctionOutcome:
    """Deterministic merge: shard order, then reconciliation, with the
    greedy iteration counter renumbered sequentially."""
    parts = list(shard_outcomes)
    if cross_outcome is not None:
        parts.append(cross_outcome)
    winners: list[WinningBid] = []
    duals = DualSolution(instance=instance)
    iteration = 0
    for part in parts:
        for winner in part.winners:
            winners.append(
                WinningBid(
                    bid=winner.bid,
                    payment=winner.payment,
                    iteration=iteration,
                    marginal_utility=winner.marginal_utility,
                    average_price=winner.average_price,
                    original_price=winner.original_price,
                )
            )
            iteration += 1
        for buyer, prices in part.duals.unit_prices.items():
            duals.unit_prices.setdefault(buyer, []).extend(prices)
    return AuctionOutcome(
        instance=instance,
        winners=tuple(winners),
        duals=duals,
        ratio_bound=ssam_ratio_bound(instance.total_demand, instance.bids),
        payment_rule=payment_rule.value,
        iterations=iteration,
        mechanism="ssam",
    )


def _record_stats(stats: ShardRoundStats) -> None:
    if not _OBS.enabled:
        return
    metrics = _OBS.metrics
    metrics.counter("shard.rounds").inc()
    if stats.fast_path:
        metrics.counter("shard.fast_path_rounds").inc()
    metrics.counter("shard.local_bids").inc(stats.local_bids)
    metrics.counter("shard.cross_bids").inc(stats.cross_bids)
    metrics.counter("shard.local_winners").inc(stats.local_winners)
    metrics.counter("shard.cross_winners").inc(stats.cross_winners)
    metrics.counter("shard.clamped_shards").inc(stats.clamped_shards)
    for elapsed in stats.shard_ms:
        metrics.histogram("shard.round_ms").observe(elapsed)
    if stats.reconcile_ms:
        metrics.histogram("shard.reconcile_ms").observe(stats.reconcile_ms)
    _OBS.tracer.event(
        "shard-round",
        n_shards=stats.n_shards,
        active_shards=stats.active_shards,
        local_bids=stats.local_bids,
        cross_bids=stats.cross_bids,
        local_winners=stats.local_winners,
        cross_winners=stats.cross_winners,
        clamped_shards=stats.clamped_shards,
        fast_path=stats.fast_path,
    )
