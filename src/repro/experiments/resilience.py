"""Resilience sweep: social cost and coverage under seller defaults.

The paper's evaluation assumes every winning seller delivers.  This sweep
measures what each online mechanism loses when they do not: for a grid of
per-win default probabilities it runs the mechanism over the same seeded
horizon with a :class:`~repro.faults.SellerDefault` plan active and
reports social cost, demand coverage, and the recovery/abandonment split
produced by the retry policy.

Used by ``benchmarks/bench_resilience.py`` (the pytest-benchmark harness)
and by ``repro-edge-auction bench --faults`` (the CLI entry point, which
evaluates a user-supplied :class:`~repro.faults.FaultPlan` instead of the
probability grid).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.reporting import ResultTable
from repro.core.registry import get_spec, make_online
from repro.errors import ConfigurationError
from repro.workload.bidgen import MarketConfig, generate_horizon

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.core.outcomes import OnlineOutcome
    from repro.faults.models import FaultPlan
    from repro.faults.policies import ResiliencePolicy

__all__ = [
    "DEFAULT_RESILIENCE_MECHANISMS",
    "evaluate_fault_plan",
    "run_resilience_sweep",
]

DEFAULT_RESILIENCE_MECHANISMS: tuple[str, ...] = (
    "msoa",
    "pay-as-bid",
    "greedy-density",
)
"""SSAM-online plus the two baseline adapters the sweep compares."""

RESILIENCE_COLUMNS = (
    "mechanism",
    "p_default",
    "social_cost",
    "coverage",
    "recovered",
    "abandoned",
    "degraded_rounds",
    "fault_events",
)


def _check_mechanisms(mechanisms: Sequence[str]) -> tuple[str, ...]:
    names = tuple(mechanisms)
    if not names:
        raise ConfigurationError("at least one mechanism is required")
    for name in names:
        if get_spec(name).kind not in ("single", "online"):
            raise ConfigurationError(
                f"mechanism {name!r} cannot run online; the resilience "
                "sweep needs an online mechanism or a single-round "
                "mechanism wrapped by the online adapter"
            )
    return names


def _run_horizon(
    name: str,
    horizon,
    capacities,
    *,
    plan: "FaultPlan | None",
    policy: "ResiliencePolicy | None",
) -> "OnlineOutcome":
    mechanism = make_online(
        name,
        capacities,
        on_infeasible="skip",
        faults=plan,
        resilience=policy if plan is not None else None,
    )
    for instance in horizon:
        mechanism.process_round(instance)
    return mechanism.finalize()


def _add_outcome_row(
    table: ResultTable, name: str, probability: float, outcome: "OnlineOutcome"
) -> None:
    demanded = sum(r.outcome.instance.total_demand for r in outcome.rounds)
    unmet = sum(r.outcome.unmet_units for r in outcome.rounds)
    recovered = sum(
        r.resilience.recovered_units
        for r in outcome.rounds
        if r.resilience is not None
    )
    abandoned = sum(
        r.resilience.abandoned_units
        for r in outcome.rounds
        if r.resilience is not None
    )
    table.add_row(
        mechanism=name,
        p_default=probability,
        social_cost=outcome.social_cost,
        coverage=1.0 - unmet / demanded if demanded else 1.0,
        recovered=recovered,
        abandoned=abandoned,
        degraded_rounds=len(outcome.degraded_rounds),
        fault_events=outcome.fault_events,
    )


def run_resilience_sweep(
    *,
    mechanisms: Sequence[str] = DEFAULT_RESILIENCE_MECHANISMS,
    probabilities: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4),
    rounds: int = 8,
    seed: int = 11,
    fault_seed: int = 0,
    policy: "ResiliencePolicy | None" = None,
    market: MarketConfig | None = None,
) -> ResultTable:
    """Sweep seller-default probability vs. social cost and coverage.

    Every mechanism runs the *same* seeded horizon at every probability;
    ``p_default = 0`` is the fault-free reference row (a null plan, so it
    takes the exact unfaulted code path).  Faulted runs use the default
    :class:`~repro.faults.ResiliencePolicy` unless one is supplied:
    re-auction retries on default, partial-coverage degradation when the
    market cannot recover.
    """
    from repro.faults.models import FaultPlan, SellerDefault

    names = _check_mechanisms(mechanisms)
    if not probabilities:
        raise ConfigurationError("at least one default probability is required")
    rng = np.random.default_rng(seed)
    horizon, capacities = generate_horizon(
        market or MarketConfig(), rng, rounds=rounds
    )
    table = ResultTable(
        title=(
            f"Resilience sweep: seller-default probability vs. cost/coverage "
            f"({rounds} rounds, seed {seed})"
        ),
        columns=list(RESILIENCE_COLUMNS),
    )
    for name in names:
        for probability in probabilities:
            plan = FaultPlan(
                seed=fault_seed,
                seller_defaults=(SellerDefault(probability=probability),),
            )
            outcome = _run_horizon(
                name,
                horizon,
                capacities,
                plan=None if plan.is_null else plan,
                policy=policy,
            )
            _add_outcome_row(table, name, probability, outcome)
    return table


def evaluate_fault_plan(
    plan: "FaultPlan",
    *,
    mechanisms: Sequence[str] = DEFAULT_RESILIENCE_MECHANISMS,
    rounds: int = 8,
    seed: int = 11,
    policy: "ResiliencePolicy | None" = None,
    market: MarketConfig | None = None,
) -> ResultTable:
    """Evaluate one user-supplied fault plan against the fault-free run.

    Two rows per mechanism — the fault-free reference (``p_default`` 0)
    and the planned faults (``p_default`` reported as the plan's max
    seller-default probability) — over the same seeded horizon.  Backs the
    ``bench --faults <spec.json>`` CLI path.
    """
    names = _check_mechanisms(mechanisms)
    rng = np.random.default_rng(seed)
    horizon, capacities = generate_horizon(
        market or MarketConfig(), rng, rounds=rounds
    )
    planned_p = max(
        (m.probability for m in plan.seller_defaults), default=0.0
    )
    table = ResultTable(
        title=f"Fault-plan evaluation ({rounds} rounds, seed {seed})",
        columns=list(RESILIENCE_COLUMNS),
    )
    for name in names:
        baseline = _run_horizon(
            name, horizon, capacities, plan=None, policy=None
        )
        _add_outcome_row(table, name, 0.0, baseline)
        faulted = _run_horizon(
            name,
            horizon,
            capacities,
            plan=None if plan.is_null else plan,
            policy=policy,
        )
        _add_outcome_row(table, name, planned_p, faulted)
    return table
