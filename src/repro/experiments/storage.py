"""Persistence for experiment results.

Sweeps at paper scale take minutes; losing their tables to a closed
terminal is silly.  This module round-trips :class:`ResultTable` objects
through JSON (lossless: title, columns, precision, typed cells) and CSV
(interoperable), and can diff two saved runs cell by cell — the tool used
to confirm that refactors leave the measured figures untouched.
"""

from __future__ import annotations

import csv
import json
import pathlib

from repro.analysis.reporting import ResultTable
from repro.core.outcomes import AuctionOutcome, OnlineOutcome
from repro.errors import ConfigurationError

__all__ = [
    "save_table",
    "load_table",
    "save_csv",
    "diff_tables",
    "save_outcome",
    "load_outcome",
]

_FORMAT_VERSION = 1


def save_table(table: ResultTable, path: str | pathlib.Path) -> None:
    """Write a table to JSON (lossless round-trip with :func:`load_table`)."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "title": table.title,
        "columns": list(table.columns),
        "precision": table.precision,
        "rows": [dict(row) for row in table.rows],
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_table(path: str | pathlib.Path) -> ResultTable:
    """Read a table previously written by :func:`save_table`."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(f"cannot load table from {path}: {error}") from error
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported table format version {version!r} in {path}"
        )
    table = ResultTable(
        title=payload["title"],
        columns=list(payload["columns"]),
        precision=int(payload.get("precision", 3)),
    )
    for row in payload["rows"]:
        table.add_row(**row)
    return table


def save_outcome(
    outcome: AuctionOutcome | OnlineOutcome, path: str | pathlib.Path
) -> None:
    """Persist an auction or online outcome through the one shared schema.

    Everything flows through ``outcome.to_dict()`` — the same schema the
    CLI and the engine bench harness use — so a saved outcome can be
    reloaded with :func:`load_outcome` regardless of which tool wrote it.
    """
    payload = outcome.to_dict()
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_outcome(path: str | pathlib.Path) -> AuctionOutcome | OnlineOutcome:
    """Read an outcome previously written by :func:`save_outcome`."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(
            f"cannot load outcome from {path}: {error}"
        ) from error
    kind = payload.get("kind")
    if kind == "auction":
        return AuctionOutcome.from_dict(payload)
    if kind == "online":
        return OnlineOutcome.from_dict(payload)
    raise ConfigurationError(
        f"unknown outcome kind {kind!r} in {path} (expected 'auction' or 'online')"
    )


def save_csv(table: ResultTable, path: str | pathlib.Path) -> None:
    """Write a table as a plain CSV file (header + one line per row)."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(table.columns))
        writer.writeheader()
        for row in table.rows:
            writer.writerow({c: row.get(c, "") for c in table.columns})


def diff_tables(
    old: ResultTable,
    new: ResultTable,
    *,
    rel_tolerance: float = 1e-9,
) -> list[str]:
    """Cell-by-cell differences between two tables, as readable strings.

    Numeric cells compare within ``rel_tolerance``; everything else
    compares exactly.  Structural differences (columns, row counts) are
    reported first and short-circuit the cell comparison.
    """
    problems: list[str] = []
    if list(old.columns) != list(new.columns):
        problems.append(
            f"columns differ: {list(old.columns)} vs {list(new.columns)}"
        )
        return problems
    if len(old.rows) != len(new.rows):
        problems.append(f"row counts differ: {len(old.rows)} vs {len(new.rows)}")
        return problems
    for index, (row_old, row_new) in enumerate(zip(old.rows, new.rows)):
        for column in old.columns:
            a = row_old.get(column)
            b = row_new.get(column)
            if isinstance(a, (int, float)) and isinstance(b, (int, float)):
                scale = max(abs(float(a)), abs(float(b)), 1e-12)
                if abs(float(a) - float(b)) / scale > rel_tolerance:
                    problems.append(
                        f"row {index} col {column!r}: {a!r} != {b!r}"
                    )
            elif a != b:
                problems.append(f"row {index} col {column!r}: {a!r} != {b!r}")
    return problems
