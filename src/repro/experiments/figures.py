"""The per-figure experiment definitions (Figures 3–6 of the paper).

Each ``figNN`` function runs the corresponding sweep and returns a
:class:`~repro.analysis.reporting.ResultTable` whose rows are the series
the paper plots.  The benchmarks in ``benchmarks/`` call these and print
the rendered tables; EXPERIMENTS.md records the measured shapes against
the paper's claims.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.analysis.economics import payment_price_pairs
from repro.analysis.reporting import ResultTable
from repro.baselines.offline import run_offline_optimal
from repro.core.ssam import PaymentRule, run_ssam
from repro.core.variants import VARIANT_RUNNERS
from repro.experiments.config import ExperimentConfig, FULL
from repro.errors import ConfigurationError
from repro.experiments.runner import (
    build_horizon_scenario,
    build_single_round,
    mean_over_seeds,
    run_configured_mechanism,
)
from repro.solvers.milp import solve_wsp_optimal
from repro.workload.scenarios import PAPER_DEFAULTS, PaperScenario

__all__ = ["fig3a", "fig3b", "fig4a", "fig4b", "fig5a", "fig6a", "fig6b"]


def _scenario(
    *, n_microservices: int | None = None, n_requests: int | None = None,
    rounds: int | None = None, bids: int | None = None,
) -> PaperScenario:
    changes: dict[str, object] = {}
    if n_microservices is not None:
        changes["n_microservices"] = n_microservices
    if n_requests is not None:
        changes["n_requests"] = n_requests
    if rounds is not None:
        changes["rounds"] = rounds
    if bids is not None:
        changes["bids_per_seller"] = bids
    return dataclasses.replace(PAPER_DEFAULTS, **changes)


# ----------------------------------------------------------------------
# Figure 3(a): SSAM performance ratio vs number of microservices
# ----------------------------------------------------------------------
def fig3a(config: ExperimentConfig = FULL) -> ResultTable:
    """Mechanism's ratio to the exact optimum, J ∈ {1, 2}, S ∈ 25–75.

    Paper shape (for SSAM, the default mechanism): ratio grows with S;
    with one bid per seller the ratio stays ≈ 1; everything respects the
    W·Ξ bound.  Baselines without an a-priori bound leave the bound
    column empty.
    """
    table = ResultTable(
        title=(
            f"Figure 3(a): {config.mechanism} performance ratio "
            "vs #microservices"
        ),
        columns=["microservices", "bids_per_seller", "ratio", "bound_WXi"],
    )
    for count in config.microservice_counts:
        for bids in (1, 2):
            scenario = _scenario(n_microservices=count, bids=bids)

            def ratio_for(seed: int) -> float:
                instance = build_single_round(scenario, seed)
                outcome = run_configured_mechanism(
                    config, instance, seed=seed
                )
                optimum = solve_wsp_optimal(instance).objective
                return outcome.social_cost / optimum if optimum > 0 else 1.0

            def bound_for(seed: int) -> float:
                instance = build_single_round(scenario, seed)
                return run_configured_mechanism(
                    config, instance, seed=seed
                ).ratio_bound

            try:
                bound = mean_over_seeds(config.seeds, bound_for)
            except ConfigurationError:
                bound = None  # mechanism carries no approximation bound
            table.add_row(
                microservices=count,
                bids_per_seller=bids,
                ratio=mean_over_seeds(config.seeds, ratio_for),
                bound_WXi=bound,
            )
    return table


# ----------------------------------------------------------------------
# Figure 3(b): SSAM social cost / payment / optimal vs microservices
# ----------------------------------------------------------------------
def fig3b(config: ExperimentConfig = FULL) -> ResultTable:
    """SSAM cost anatomy per request level (100 vs 200 requests).

    Paper shape: cost grows with S; payment ≥ social cost ≥ optimal;
    the 200-request series sits above the 100-request one.
    """
    table = ResultTable(
        title=(
            f"Figure 3(b): {config.mechanism} social cost, payment, "
            "and optimum"
        ),
        columns=[
            "microservices",
            "requests",
            "social_cost",
            "total_payment",
            "optimal_cost",
        ],
    )
    for count in config.microservice_counts:
        for requests in config.request_levels:
            scenario = _scenario(n_microservices=count, n_requests=requests)
            rows = []
            for seed in config.seeds:
                instance = build_single_round(scenario, seed)
                outcome = run_configured_mechanism(config, instance, seed=seed)
                optimum = solve_wsp_optimal(instance).objective
                rows.append(
                    (outcome.social_cost, outcome.total_payment, optimum)
                )
            table.add_row(
                microservices=count,
                requests=requests,
                social_cost=float(np.mean([r[0] for r in rows])),
                total_payment=float(np.mean([r[1] for r in rows])),
                optimal_cost=float(np.mean([r[2] for r in rows])),
            )
    return table


# ----------------------------------------------------------------------
# Figure 4(a): payment vs actual price per winning bid
# ----------------------------------------------------------------------
def fig4a(
    config: ExperimentConfig = FULL, *, max_winners: int = 20
) -> ResultTable:
    """Individual rationality scatter: every payment ≥ its price."""
    table = ResultTable(
        title="Figure 4(a): per-winner payment vs actual price (IR check)",
        columns=["winner", "price", "payment", "payment_covers_price"],
    )
    instance = build_single_round(PAPER_DEFAULTS, config.seeds[0])
    outcome = run_configured_mechanism(config, instance, seed=config.seeds[0])
    for i, (price, payment) in enumerate(payment_price_pairs(outcome)):
        if i >= max_winners:
            break
        table.add_row(
            winner=i,
            price=price,
            payment=payment,
            payment_covers_price=payment >= price - 1e-9,
        )
    return table


# ----------------------------------------------------------------------
# Figure 4(b): SSAM running time
# ----------------------------------------------------------------------
def fig4b(
    config: ExperimentConfig = FULL,
    *,
    repeats: int = 5,
) -> ResultTable:
    """Wall-clock per SSAM round (paper: < 100 ms, near-linear growth).

    Times both payment rules: the paper-literal runner-up rule is the
    one matching the paper's O(n²m) claim; the exact critical-value rule
    re-runs the greedy per winner and is correspondingly slower.
    """
    table = ResultTable(
        title="Figure 4(b): SSAM running time (ms per auction round)",
        columns=["microservices", "runner_up_ms", "critical_rerun_ms"],
    )
    for count in config.microservice_counts:
        scenario = _scenario(n_microservices=count)
        instance = build_single_round(scenario, config.seeds[0])
        timings: dict[PaymentRule, float] = {}
        for rule in PaymentRule:
            start = time.perf_counter()
            for _ in range(repeats):
                run_ssam(
                    instance,
                    payment_rule=rule,
                    parallelism=config.parallelism,
                    engine=config.engine,
                )
            timings[rule] = (time.perf_counter() - start) / repeats * 1000.0
        table.add_row(
            microservices=count,
            runner_up_ms=timings[PaymentRule.ITERATION_RUNNER_UP],
            critical_rerun_ms=timings[PaymentRule.CRITICAL_RERUN],
        )
    return table


# ----------------------------------------------------------------------
# Figure 5(a): MSOA performance ratio and variants
# ----------------------------------------------------------------------
def fig5a(config: ExperimentConfig = FULL) -> ResultTable:
    """Online ratio vs the clairvoyant optimum, for MSOA and variants.

    Paper shape: online ratios sit slightly above SSAM's; the ratio eases
    as the market grows; the demand-aware variant is the cheapest of the
    tuned configurations.
    """
    table = ResultTable(
        title="Figure 5(a): MSOA performance ratio vs #microservices",
        columns=["microservices", "requests"] + list(VARIANT_RUNNERS),
    )
    for count in config.microservice_counts:
        for requests in config.request_levels:
            scenario = _scenario(
                n_microservices=count, n_requests=requests,
                rounds=config.horizon_rounds,
            )
            per_variant: dict[str, list[float]] = {
                name: [] for name in VARIANT_RUNNERS
            }
            for seed in config.seeds:
                # One horizon and one offline denominator per seed, shared
                # by all variants; ratio runs use the cheap runner-up
                # payment rule (payments don't change the allocation).
                horizon = build_horizon_scenario(
                    scenario, seed, estimation_sigma=config.estimation_sigma
                )
                offline = run_offline_optimal(
                    horizon.rounds_true, horizon.capacities
                )
                if offline.social_cost <= 0:
                    continue
                for name, runner in VARIANT_RUNNERS.items():
                    outcome = runner(
                        horizon,
                        payment_rule=PaymentRule.ITERATION_RUNNER_UP,
                        parallelism=config.parallelism,
                        engine=config.engine,
                        faults=config.faults,
                        resilience=config.resilience,
                    )
                    per_variant[name].append(
                        outcome.social_cost / offline.social_cost
                    )
            row: dict[str, object] = {
                "microservices": count,
                "requests": requests,
            }
            for name, ratios in per_variant.items():
                row[name] = float(np.mean(ratios)) if ratios else None
            table.add_row(**row)
    return table


# ----------------------------------------------------------------------
# Figure 6(a): ratio vs number of rounds T and bids per user J
# ----------------------------------------------------------------------
def fig6a(config: ExperimentConfig = FULL) -> ResultTable:
    """Online ratio as the horizon lengthens and bid menus widen.

    Paper shape: larger J worsens the ratio; longer horizons do not
    improve it.
    """
    table = ResultTable(
        title="Figure 6(a): MSOA ratio vs rounds T and bids-per-user J",
        columns=["rounds_T", "bids_J", "ratio"],
    )
    for rounds in config.rounds_axis:
        for bids in config.bids_axis:
            scenario = _scenario(rounds=rounds, bids=bids)

            def ratio_for(seed: int) -> float:
                horizon = build_horizon_scenario(
                    scenario, seed, estimation_sigma=0.0
                )
                outcome = VARIANT_RUNNERS["MSOA"](
                    horizon,
                    payment_rule=PaymentRule.ITERATION_RUNNER_UP,
                    parallelism=config.parallelism,
                    engine=config.engine,
                    faults=config.faults,
                    resilience=config.resilience,
                )
                offline = run_offline_optimal(
                    horizon.rounds_true, horizon.capacities
                )
                if offline.social_cost <= 0:
                    return float("nan")
                return outcome.social_cost / offline.social_cost

            table.add_row(
                rounds_T=rounds,
                bids_J=bids,
                ratio=mean_over_seeds(config.seeds, ratio_for),
            )
    return table


# ----------------------------------------------------------------------
# Figure 6(b): MSOA social cost / payment / offline optimum
# ----------------------------------------------------------------------
def fig6b(config: ExperimentConfig = FULL) -> ResultTable:
    """Online cost anatomy per request level over the microservice sweep.

    Paper shape: same ordering as Figure 3(b) — payment ≥ online social
    cost ≥ offline optimum — with the request-200 series above the
    request-100 one.
    """
    table = ResultTable(
        title="Figure 6(b): MSOA social cost, payment, offline optimum",
        columns=[
            "microservices",
            "requests",
            "social_cost",
            "total_payment",
            "offline_optimal",
        ],
    )
    for count in config.microservice_counts:
        for requests in config.request_levels:
            scenario = _scenario(
                n_microservices=count, n_requests=requests,
                rounds=config.horizon_rounds,
            )

            rows = []
            for seed in config.seeds:
                horizon = build_horizon_scenario(
                    scenario, seed, estimation_sigma=0.0
                )
                outcome = VARIANT_RUNNERS["MSOA"](
                    horizon,
                    parallelism=config.parallelism,
                    engine=config.engine,
                    faults=config.faults,
                    resilience=config.resilience,
                )
                offline = run_offline_optimal(
                    horizon.rounds_true, horizon.capacities
                )
                rows.append(
                    (
                        outcome.social_cost,
                        outcome.total_payment,
                        offline.social_cost,
                    )
                )
            table.add_row(
                microservices=count,
                requests=requests,
                social_cost=float(np.mean([r[0] for r in rows])),
                total_payment=float(np.mean([r[1] for r in rows])),
                offline_optimal=float(np.mean([r[2] for r in rows])),
            )
    return table
