"""Scale bench: the columnar kernels at 10^4–10^5 bids.

Where :mod:`repro.experiments.bench_engine` tracks the fast engine
against the reference oracle on paper-sized markets, this tier measures
the regime the columnar core was built for — bid counts two to three
orders of magnitude past the paper's sweeps:

* single-round cases at 10^4 and 10^5 bids timing the reference loop
  (where affordable), the fast engine serial, and the columnar engine
  with its batched critical-payment kernel, plus isolated payment-phase
  timings (per-winner serial replays vs. one batched prefix-sharing
  pass);
* an MSOA horizon with stable round structure and ample capacities,
  timing the incremental layout carry (price-column refresh on cache
  hit) against a cold rebuild every round.

Every timed pair is checked for outcome equivalence through
``AuctionOutcome.to_dict()`` — the columnar contract is bit-identity,
so a speedup that moves any winner, payment, or dual is a bug.

The payload is written to ``BENCH_scale.json`` (tracked at the repo
root) and CI re-runs the quick tier against the committed artifact,
failing on a >20% speedup regression via
:func:`check_scale_regression`.

Run from the CLI::

    repro-edge-auction bench --scale            # full tier (10^5 case)
    repro-edge-auction bench --scale --quick    # CI-sized tier
    repro-edge-auction bench --scale --quick --against BENCH_scale.json
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from dataclasses import dataclass

import numpy as np

from repro.core.ssam import PaymentRule, run_ssam
from repro.errors import ConfigurationError
from repro.workload.bidgen import MarketConfig, generate_round

__all__ = [
    "ScaleBenchCase",
    "default_scale_cases",
    "run_scale_bench",
    "write_scale_bench",
    "render_scale_bench",
    "load_scale_bench",
    "check_scale_regression",
]

SCALE_BENCH_PATH = "BENCH_scale.json"
"""Default output file (repo root); committed so CI can gate regressions."""

REGRESSION_TOLERANCE = 0.2
"""Allowed relative speedup drop before :func:`check_scale_regression`
flags a case (20%, absorbing runner noise without hiding real losses)."""


@dataclass(frozen=True)
class ScaleBenchCase:
    """One timed market instance of the scale bench.

    ``time_reference`` controls whether the O(n²)-ish reference loop is
    timed at all — at 10^5 bids it is prohibitively slow, so the large
    case reports only fast-vs-columnar.  ``repeats`` is best-of-N.
    """

    name: str
    config: MarketConfig
    seed: int = 2019
    repeats: int = 3
    time_reference: bool = True


@dataclass(frozen=True)
class MsoaScaleCase:
    """The MSOA incrementality case: one market replayed for ``rounds``.

    Reusing one instance keeps the round *structure* stable (ψ only
    moves prices), so the incremental path degenerates to price-column
    refreshes — exactly the cache-hit regime the carry optimizes.
    Capacities are set far above total demand so no admissibility
    exclusion perturbs the structure mid-horizon.
    """

    name: str
    config: MarketConfig
    rounds: int = 6
    seed: int = 7
    repeats: int = 3


def default_scale_cases(
    *, quick: bool = False
) -> tuple[list[ScaleBenchCase], MsoaScaleCase]:
    """The scale tier: 10^4-bid case (+10^5 on the full tier) and MSOA.

    The quick tier keeps the 10^4-bid case — including its reference
    timing, which anchors the committed artifact's speedup floor — and
    drops only the 10^5-bid case; every retained case is byte-identical
    in configuration to its full-tier twin so the CI regression gate
    compares like with like.
    """
    base = dict(n_buyers=16, demand_units_range=(1, 3), coverage_range=(1, 3))
    cases = [
        ScaleBenchCase(
            name="scale_10k",
            config=MarketConfig(n_sellers=5_000, **base),
        )
    ]
    if not quick:
        cases.append(
            ScaleBenchCase(
                name="scale_100k",
                config=MarketConfig(n_sellers=50_000, **base),
                time_reference=False,
            )
        )
    msoa = MsoaScaleCase(
        name="msoa_incremental",
        config=MarketConfig(
            n_sellers=2_000,
            n_buyers=12,
            demand_units_range=(1, 3),
            coverage_range=(1, 3),
        ),
    )
    return cases, msoa


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run_single_case(case: ScaleBenchCase) -> dict:
    from repro.core.columnar import (
        ColumnarInstance,
        columnar_greedy_selection,
    )
    from repro.core.engine import compute_critical_payments

    rng = np.random.default_rng(case.seed)
    instance = generate_round(case.config, rng)

    fast_outcome = run_ssam(
        instance, payment_rule=PaymentRule.CRITICAL_RERUN, engine="fast"
    )
    columnar_outcome = run_ssam(
        instance, payment_rule=PaymentRule.CRITICAL_RERUN, engine="columnar"
    )
    equivalent = fast_outcome.to_dict() == columnar_outcome.to_dict()

    reference_s = None
    if case.time_reference:
        reference_outcome = run_ssam(
            instance,
            payment_rule=PaymentRule.CRITICAL_RERUN,
            engine="reference",
        )
        equivalent = (
            equivalent
            and reference_outcome.to_dict() == fast_outcome.to_dict()
        )
        reference_s = _best_of(
            case.repeats,
            lambda: run_ssam(
                instance,
                payment_rule=PaymentRule.CRITICAL_RERUN,
                engine="reference",
            ),
        )
    fast_s = _best_of(
        case.repeats,
        lambda: run_ssam(
            instance, payment_rule=PaymentRule.CRITICAL_RERUN, engine="fast"
        ),
    )
    columnar_s = _best_of(
        case.repeats,
        lambda: run_ssam(
            instance,
            payment_rule=PaymentRule.CRITICAL_RERUN,
            engine="columnar",
        ),
    )

    # Isolate the payment phase: per-winner serial replays (the fast
    # engine's rule) vs. one batched prefix-sharing pass.  Both start
    # from the same precomputed trajectory so only the kernels differ.
    cinst = ColumnarInstance.build(instance.bids, instance.demand)
    steps = columnar_greedy_selection(
        instance.bids, instance.demand, columnar=cinst
    )
    winners = tuple(step.bid for step in steps)
    serial_payments = compute_critical_payments(
        instance, winners, parallelism=1
    )
    batched_payments = compute_critical_payments(
        instance,
        winners,
        engine="columnar",
        columnar=cinst,
        trajectory=steps,
    )
    equivalent = equivalent and serial_payments == batched_payments
    fast_payment_s = _best_of(
        case.repeats,
        lambda: compute_critical_payments(instance, winners, parallelism=1),
    )
    batched_payment_s = _best_of(
        case.repeats,
        lambda: compute_critical_payments(
            instance,
            winners,
            engine="columnar",
            columnar=cinst,
            trajectory=steps,
        ),
    )
    return {
        "case": case.name,
        "bids": len(instance.bids),
        "demand_units": instance.total_demand,
        "winners": len(fast_outcome.winners),
        "equivalent": equivalent,
        "reference_ms": (
            reference_s * 1000.0 if reference_s is not None else None
        ),
        "fast_ms": fast_s * 1000.0,
        "columnar_ms": columnar_s * 1000.0,
        "fast_payment_ms": fast_payment_s * 1000.0,
        "batched_payment_ms": batched_payment_s * 1000.0,
        "speedup_columnar": (
            reference_s / columnar_s
            if reference_s is not None and columnar_s > 0
            else None
        ),
        "columnar_vs_fast": fast_s / columnar_s if columnar_s > 0 else None,
        "payment_batch_speedup": (
            fast_payment_s / batched_payment_s
            if batched_payment_s > 0
            else None
        ),
    }


def _run_msoa_case(case: MsoaScaleCase) -> dict:
    from repro.core.msoa import run_msoa

    rng = np.random.default_rng(case.seed)
    instance = generate_round(case.config, rng)
    rounds = [instance] * case.rounds
    sellers = {bid.seller for bid in instance.bids}
    # Ample capacity: no seller is ever excluded, so every round after
    # the first is a structural cache hit for the incremental path.
    capacities = {seller: 10 * instance.total_demand for seller in sellers}

    incremental = run_msoa(
        rounds, capacities, engine="columnar", columnar_incremental=True
    )
    cold = run_msoa(
        rounds, capacities, engine="columnar", columnar_incremental=False
    )
    equivalent = incremental.to_dict() == cold.to_dict()

    incremental_s = _best_of(
        case.repeats,
        lambda: run_msoa(
            rounds, capacities, engine="columnar", columnar_incremental=True
        ),
    )
    cold_s = _best_of(
        case.repeats,
        lambda: run_msoa(
            rounds, capacities, engine="columnar", columnar_incremental=False
        ),
    )
    return {
        "case": case.name,
        "bids": len(instance.bids),
        "rounds": case.rounds,
        "equivalent": equivalent,
        "incremental_ms": incremental_s * 1000.0,
        "cold_ms": cold_s * 1000.0,
        "incremental_ms_per_round": incremental_s * 1000.0 / case.rounds,
        "cold_ms_per_round": cold_s * 1000.0 / case.rounds,
        "incremental_speedup": (
            cold_s / incremental_s if incremental_s > 0 else None
        ),
    }


def run_scale_bench(
    *,
    quick: bool = False,
    cases: list[ScaleBenchCase] | None = None,
    msoa_case: MsoaScaleCase | None = None,
) -> dict:
    """Time the scale tier and return the bench payload."""
    default_cases, default_msoa = default_scale_cases(quick=quick)
    if cases is None:
        cases = default_cases
    if msoa_case is None:
        msoa_case = default_msoa
    return {
        "bench": "scale",
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": [_run_single_case(case) for case in cases],
        "msoa": _run_msoa_case(msoa_case),
    }


def write_scale_bench(
    payload: dict, path: str | pathlib.Path = SCALE_BENCH_PATH
) -> pathlib.Path:
    """Write a scale-bench payload to disk (default ``BENCH_scale.json``)."""
    target = pathlib.Path(path)
    try:
        target.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError as error:
        raise ConfigurationError(
            f"cannot write bench results to {target}: {error}"
        ) from error
    return target


def load_scale_bench(path: str | pathlib.Path) -> dict:
    """Read a previously written scale-bench payload."""
    target = pathlib.Path(path)
    try:
        payload = json.loads(target.read_text())
    except OSError as error:
        raise ConfigurationError(
            f"cannot read bench baseline {target}: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"bench baseline {target} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict) or payload.get("bench") != "scale":
        raise ConfigurationError(
            f"bench baseline {target} is not a scale-bench payload"
        )
    return payload


def _fmt_ms(value: float | None) -> str:
    return f"{value:>10.1f}" if value is not None else f"{'-':>10}"


def _fmt_x(value: float | None) -> str:
    return f"{value:>7.1f}x" if value is not None else f"{'-':>8}"


def render_scale_bench(payload: dict) -> str:
    """A terminal-friendly summary of one scale-bench payload."""
    lines = [
        f"scale bench (quick={payload['quick']})",
        f"{'case':<14} {'bids':>7} {'ref ms':>10} {'fast ms':>10} "
        f"{'col ms':>10} {'col/ref':>8} {'col/fast':>8} {'paybatch':>8} "
        f"{'equal':>6}",
    ]
    for row in payload["cases"]:
        lines.append(
            f"{row['case']:<14} {row['bids']:>7} "
            f"{_fmt_ms(row['reference_ms'])} {_fmt_ms(row['fast_ms'])} "
            f"{_fmt_ms(row['columnar_ms'])} "
            f"{_fmt_x(row['speedup_columnar'])} "
            f"{_fmt_x(row['columnar_vs_fast'])} "
            f"{_fmt_x(row['payment_batch_speedup'])} "
            f"{str(row['equivalent']):>6}"
        )
    msoa = payload.get("msoa")
    if msoa:
        lines.append(
            f"{msoa['case']:<14} {msoa['bids']:>7} x{msoa['rounds']} rounds: "
            f"incremental {msoa['incremental_ms_per_round']:.1f} ms/round "
            f"vs cold {msoa['cold_ms_per_round']:.1f} ms/round "
            f"({_fmt_x(msoa['incremental_speedup']).strip()}), "
            f"equal {msoa['equivalent']}"
        )
    return "\n".join(lines)


_SPEEDUP_KEYS = ("speedup_columnar", "columnar_vs_fast", "payment_batch_speedup")


def check_scale_regression(
    payload: dict,
    baseline: dict,
    *,
    tolerance: float = REGRESSION_TOLERANCE,
) -> list[str]:
    """Compare a fresh payload against a committed baseline.

    Returns a (possibly empty) list of human-readable failures.  Only
    cases present in *both* payloads are compared (the quick tier omits
    the 10^5-bid case), and only speedup *ratios* are gated — absolute
    wall-clock shifts with the machine, but a ratio measured within one
    run is hardware-normalized.  Any non-equivalent case fails outright
    regardless of timing.
    """
    if not 0 <= tolerance < 1:
        raise ConfigurationError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    failures: list[str] = []
    baseline_cases = {
        row["case"]: row for row in baseline.get("cases", [])
    }
    for row in payload.get("cases", []):
        if not row.get("equivalent", True):
            failures.append(f"{row['case']}: engines diverged")
        base = baseline_cases.get(row["case"])
        if base is None:
            continue
        for key in _SPEEDUP_KEYS:
            new, old = row.get(key), base.get(key)
            if new is None or old is None:
                continue
            if new < old * (1.0 - tolerance):
                failures.append(
                    f"{row['case']}: {key} regressed "
                    f"{old:.2f}x -> {new:.2f}x "
                    f"(floor {old * (1.0 - tolerance):.2f}x)"
                )
    msoa, base_msoa = payload.get("msoa"), baseline.get("msoa")
    if msoa:
        if not msoa.get("equivalent", True):
            failures.append(
                f"{msoa['case']}: incremental and cold-rebuild diverged"
            )
        if base_msoa and msoa["case"] == base_msoa["case"]:
            new = msoa.get("incremental_speedup")
            old = base_msoa.get("incremental_speedup")
            if (
                new is not None
                and old is not None
                and new < old * (1.0 - tolerance)
            ):
                failures.append(
                    f"{msoa['case']}: incremental_speedup regressed "
                    f"{old:.2f}x -> {new:.2f}x "
                    f"(floor {old * (1.0 - tolerance):.2f}x)"
                )
    return failures
