"""Scale bench: the columnar kernels at 10^4–10^5 bids.

Where :mod:`repro.experiments.bench_engine` tracks the fast engine
against the reference oracle on paper-sized markets, this tier measures
the regime the columnar core was built for — bid counts two to three
orders of magnitude past the paper's sweeps:

* single-round cases at 10^4 and 10^5 bids timing the reference loop
  (where affordable), the fast engine serial, and the columnar engine
  with its batched critical-payment kernel, plus isolated payment-phase
  timings (per-winner serial replays vs. one batched prefix-sharing
  pass);
* an MSOA horizon with stable round structure and ample capacities,
  timing the incremental layout carry (price-column refresh on cache
  hit) against a cold rebuild every round;
* a *sharded streaming* MSOA horizon (:mod:`repro.shard`): a lazy
  region-structured bid stream cleared by
  :class:`~repro.shard.msoa.ShardedOnlineAuction` in bounded memory.
  The full tier runs 10^6 demand units and reports auctions/sec and
  p99 round latency; the quick tier times the same pipeline against an
  unsharded run of the identical horizon and gates the throughput
  *ratio* (hardware-normalized, like every other gated metric).

Every timed pair is checked for outcome equivalence through
``AuctionOutcome.to_dict()`` — the columnar contract is bit-identity,
so a speedup that moves any winner, payment, or dual is a bug.  The
sharded quick case checks per-round winner *sets* instead: with no
cross-region bids the shard decomposition provably preserves the
selected winners, while critical payments are scoped to each shard's
own market (see ``docs/scaling.md``).

The payload is written to ``BENCH_scale.json`` (tracked at the repo
root) and CI re-runs the quick tier against the committed artifact,
failing on a >20% speedup regression via
:func:`check_scale_regression`.

Run from the CLI::

    repro-edge-auction bench --scale            # full tier (10^5 + 10^6 cases)
    repro-edge-auction bench --scale --quick    # CI-sized tier
    repro-edge-auction bench --scale --quick --against BENCH_scale.json
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from dataclasses import dataclass

import numpy as np

from repro.core.ssam import PaymentRule, run_ssam
from repro.errors import ConfigurationError
from repro.shard.streaming import StreamConfig
from repro.workload.bidgen import MarketConfig, generate_round

__all__ = [
    "ScaleBenchCase",
    "ShardScaleCase",
    "default_scale_cases",
    "default_shard_case",
    "run_scale_bench",
    "write_scale_bench",
    "render_scale_bench",
    "load_scale_bench",
    "check_scale_regression",
]

SCALE_BENCH_PATH = "BENCH_scale.json"
"""Default output file (repo root); committed so CI can gate regressions."""

REGRESSION_TOLERANCE = 0.2
"""Allowed relative speedup drop before :func:`check_scale_regression`
flags a case (20%, absorbing runner noise without hiding real losses)."""


@dataclass(frozen=True)
class ScaleBenchCase:
    """One timed market instance of the scale bench.

    ``time_reference`` controls whether the O(n²)-ish reference loop is
    timed at all — at 10^5 bids it is prohibitively slow, so the large
    case reports only fast-vs-columnar.  ``repeats`` is best-of-N.
    """

    name: str
    config: MarketConfig
    seed: int = 2019
    repeats: int = 3
    time_reference: bool = True


@dataclass(frozen=True)
class MsoaScaleCase:
    """The MSOA incrementality case: one market replayed for ``rounds``.

    Reusing one instance keeps the round *structure* stable (ψ only
    moves prices), so the incremental path degenerates to price-column
    refreshes — exactly the cache-hit regime the carry optimizes.
    Capacities are set far above total demand so no admissibility
    exclusion perturbs the structure mid-horizon.
    """

    name: str
    config: MarketConfig
    rounds: int = 6
    seed: int = 7
    repeats: int = 3


def default_scale_cases(
    *, quick: bool = False
) -> tuple[list[ScaleBenchCase], MsoaScaleCase]:
    """The scale tier: 10^4-bid case (+10^5 on the full tier) and MSOA.

    The quick tier keeps the 10^4-bid case — including its reference
    timing, which anchors the committed artifact's speedup floor — and
    drops only the 10^5-bid case; every retained case is byte-identical
    in configuration to its full-tier twin so the CI regression gate
    compares like with like.
    """
    base = dict(n_buyers=16, demand_units_range=(1, 3), coverage_range=(1, 3))
    cases = [
        ScaleBenchCase(
            name="scale_10k",
            config=MarketConfig(n_sellers=5_000, **base),
        )
    ]
    if not quick:
        cases.append(
            ScaleBenchCase(
                name="scale_100k",
                config=MarketConfig(n_sellers=50_000, **base),
                time_reference=False,
            )
        )
    msoa = MsoaScaleCase(
        name="msoa_incremental",
        config=MarketConfig(
            n_sellers=2_000,
            n_buyers=12,
            demand_units_range=(1, 3),
            coverage_range=(1, 3),
        ),
    )
    return cases, msoa


@dataclass(frozen=True)
class ShardScaleCase:
    """The sharded streaming case: a lazy bid stream through
    :class:`~repro.shard.msoa.ShardedOnlineAuction`.

    ``shards=None`` gives one shard per stream region (the natural
    geographic plan); an explicit count folds regions round-robin.
    ``compare_unsharded`` additionally times the identical horizon
    through plain MSOA and checks per-round winner-set equality —
    affordable on the quick tier, prohibitive at 10^6 demand units
    (exactly like the reference engine at 10^5 bids).
    """

    name: str
    config: StreamConfig
    shards: int | None = None
    strategy: str = "region"
    seed: int = 2019
    repeats: int = 1
    compare_unsharded: bool = True


def default_shard_case(
    *, quick: bool = False, shards: int | None = None, strategy: str = "region"
) -> ShardScaleCase:
    """The shard tier's default case.

    Full tier: 1000 rounds × 16 regions × 25 buyers × mean demand 2.5 =
    10^6 expected demand units, sharded-only (streamed, bounded
    memory).  Quick tier: a small horizon with no cross-region bids,
    timed sharded *and* unsharded so the committed artifact carries a
    hardware-normalized ``sharded_speedup`` ratio for the CI gate.
    """
    if quick:
        return ShardScaleCase(
            name="shard_quick",
            config=StreamConfig(
                rounds=5,
                regions=4,
                buyers_per_region=40,
                sellers_per_region=120,
                demand_range=(2, 3),
                cross_region_fraction=0.0,
            ),
            shards=shards,
            strategy=strategy,
            compare_unsharded=True,
        )
    return ShardScaleCase(
        name="shard_1m",
        config=StreamConfig(
            rounds=1000,
            regions=16,
            buyers_per_region=25,
            sellers_per_region=75,
            demand_range=(2, 3),
            cross_region_fraction=0.05,
        ),
        shards=shards,
        strategy=strategy,
        compare_unsharded=False,
    )


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run_single_case(case: ScaleBenchCase) -> dict:
    from repro.core.columnar import (
        ColumnarInstance,
        columnar_greedy_selection,
    )
    from repro.core.engine import compute_critical_payments

    rng = np.random.default_rng(case.seed)
    instance = generate_round(case.config, rng)

    fast_outcome = run_ssam(
        instance, payment_rule=PaymentRule.CRITICAL_RERUN, engine="fast"
    )
    columnar_outcome = run_ssam(
        instance, payment_rule=PaymentRule.CRITICAL_RERUN, engine="columnar"
    )
    equivalent = fast_outcome.to_dict() == columnar_outcome.to_dict()

    reference_s = None
    if case.time_reference:
        reference_outcome = run_ssam(
            instance,
            payment_rule=PaymentRule.CRITICAL_RERUN,
            engine="reference",
        )
        equivalent = (
            equivalent
            and reference_outcome.to_dict() == fast_outcome.to_dict()
        )
        reference_s = _best_of(
            case.repeats,
            lambda: run_ssam(
                instance,
                payment_rule=PaymentRule.CRITICAL_RERUN,
                engine="reference",
            ),
        )
    fast_s = _best_of(
        case.repeats,
        lambda: run_ssam(
            instance, payment_rule=PaymentRule.CRITICAL_RERUN, engine="fast"
        ),
    )
    columnar_s = _best_of(
        case.repeats,
        lambda: run_ssam(
            instance,
            payment_rule=PaymentRule.CRITICAL_RERUN,
            engine="columnar",
        ),
    )

    # Isolate the payment phase: per-winner serial replays (the fast
    # engine's rule) vs. one batched prefix-sharing pass.  Both start
    # from the same precomputed trajectory so only the kernels differ.
    cinst = ColumnarInstance.build(instance.bids, instance.demand)
    steps = columnar_greedy_selection(
        instance.bids, instance.demand, columnar=cinst
    )
    winners = tuple(step.bid for step in steps)
    serial_payments = compute_critical_payments(
        instance, winners, parallelism=1
    )
    batched_payments = compute_critical_payments(
        instance,
        winners,
        engine="columnar",
        columnar=cinst,
        trajectory=steps,
    )
    equivalent = equivalent and serial_payments == batched_payments
    fast_payment_s = _best_of(
        case.repeats,
        lambda: compute_critical_payments(instance, winners, parallelism=1),
    )
    batched_payment_s = _best_of(
        case.repeats,
        lambda: compute_critical_payments(
            instance,
            winners,
            engine="columnar",
            columnar=cinst,
            trajectory=steps,
        ),
    )
    return {
        "case": case.name,
        "bids": len(instance.bids),
        "demand_units": instance.total_demand,
        "winners": len(fast_outcome.winners),
        "equivalent": equivalent,
        "reference_ms": (
            reference_s * 1000.0 if reference_s is not None else None
        ),
        "fast_ms": fast_s * 1000.0,
        "columnar_ms": columnar_s * 1000.0,
        "fast_payment_ms": fast_payment_s * 1000.0,
        "batched_payment_ms": batched_payment_s * 1000.0,
        "speedup_columnar": (
            reference_s / columnar_s
            if reference_s is not None and columnar_s > 0
            else None
        ),
        "columnar_vs_fast": fast_s / columnar_s if columnar_s > 0 else None,
        "payment_batch_speedup": (
            fast_payment_s / batched_payment_s
            if batched_payment_s > 0
            else None
        ),
    }


def _run_msoa_case(case: MsoaScaleCase) -> dict:
    from repro.core.msoa import run_msoa

    rng = np.random.default_rng(case.seed)
    instance = generate_round(case.config, rng)
    rounds = [instance] * case.rounds
    sellers = {bid.seller for bid in instance.bids}
    # Ample capacity: no seller is ever excluded, so every round after
    # the first is a structural cache hit for the incremental path.
    capacities = {seller: 10 * instance.total_demand for seller in sellers}

    incremental = run_msoa(
        rounds, capacities, engine="columnar", columnar_incremental=True
    )
    cold = run_msoa(
        rounds, capacities, engine="columnar", columnar_incremental=False
    )
    equivalent = incremental.to_dict() == cold.to_dict()

    incremental_s = _best_of(
        case.repeats,
        lambda: run_msoa(
            rounds, capacities, engine="columnar", columnar_incremental=True
        ),
    )
    cold_s = _best_of(
        case.repeats,
        lambda: run_msoa(
            rounds, capacities, engine="columnar", columnar_incremental=False
        ),
    )
    return {
        "case": case.name,
        "bids": len(instance.bids),
        "rounds": case.rounds,
        "equivalent": equivalent,
        "incremental_ms": incremental_s * 1000.0,
        "cold_ms": cold_s * 1000.0,
        "incremental_ms_per_round": incremental_s * 1000.0 / case.rounds,
        "cold_ms_per_round": cold_s * 1000.0 / case.rounds,
        "incremental_speedup": (
            cold_s / incremental_s if incremental_s > 0 else None
        ),
    }


def _shard_plan(case: ShardScaleCase):
    from repro.shard import make_plan
    from repro.shard.streaming import region_plan

    if case.strategy == "region":
        return region_plan(case.config, case.shards)
    n_shards = case.shards if case.shards is not None else case.config.regions
    return make_plan(case.strategy, n_shards)


def _run_shard_case(case: ShardScaleCase) -> dict:
    from repro.core.msoa import MultiStageOnlineAuction
    from repro.shard import ShardedOnlineAuction
    from repro.shard.streaming import stream_capacities, stream_rounds

    config = case.config
    plan = _shard_plan(case)
    capacities = stream_capacities(config)
    collect_keys = case.compare_unsharded

    def _horizon(auction):
        """One streamed pass; per-round clearing times (generation
        excluded on both sides, so the speedup ratio compares clearing
        with clearing)."""
        rng = np.random.default_rng(case.seed)
        times: list[float] = []
        totals = {"demand_units": 0, "bids": 0, "winners": 0}
        keys: list[frozenset] = []
        for instance in stream_rounds(config, rng):
            start = time.perf_counter()
            result = auction.process_round(instance)
            times.append(time.perf_counter() - start)
            totals["demand_units"] += instance.total_demand
            totals["bids"] += len(instance.bids)
            totals["winners"] += len(result.outcome.winners)
            if collect_keys:
                keys.append(
                    frozenset(w.bid.key for w in result.outcome.winners)
                )
        return times, totals, keys

    best_times = totals = sharded_keys = stats = None
    for _ in range(max(1, case.repeats)):
        auction = ShardedOnlineAuction(
            capacities,
            plan=plan,
            engine="columnar",
            on_infeasible="best_effort",
            retain_rounds=False,
        )
        times, totals, sharded_keys = _horizon(auction)
        if best_times is None or sum(times) < sum(best_times):
            best_times, stats = times, auction.shard_stats
    total_s = sum(best_times)
    times_ms = np.asarray(best_times) * 1000.0

    unsharded_s = sharded_speedup = equivalent = None
    if case.compare_unsharded:
        best_unsharded = unsharded_keys = None
        for _ in range(max(1, case.repeats)):
            auction = MultiStageOnlineAuction(
                capacities,
                engine="columnar",
                on_infeasible="best_effort",
                retain_rounds=False,
            )
            times, _, unsharded_keys = _horizon(auction)
            if best_unsharded is None or sum(times) < best_unsharded:
                best_unsharded = sum(times)
        unsharded_s = best_unsharded
        sharded_speedup = unsharded_s / total_s if total_s > 0 else None
        equivalent = sharded_keys == unsharded_keys

    return {
        "case": case.name,
        "rounds": config.rounds,
        "shards": plan.n_shards,
        "strategy": case.strategy,
        "bids": totals["bids"],
        "demand_units": totals["demand_units"],
        "winners": totals["winners"],
        "cross_bids": sum(s.cross_bids for s in stats),
        "clamped_shards": sum(s.clamped_shards for s in stats),
        "total_s": total_s,
        "auctions_per_sec": config.rounds / total_s if total_s > 0 else None,
        "mean_round_ms": float(np.mean(times_ms)),
        "p99_round_ms": float(np.percentile(times_ms, 99)),
        "unsharded_s": unsharded_s,
        "sharded_speedup": sharded_speedup,
        "equivalent": equivalent,
    }


def run_scale_bench(
    *,
    quick: bool = False,
    cases: list[ScaleBenchCase] | None = None,
    msoa_case: MsoaScaleCase | None = None,
    shard_case: ShardScaleCase | None = None,
) -> dict:
    """Time the scale tier and return the bench payload."""
    default_cases, default_msoa = default_scale_cases(quick=quick)
    if cases is None:
        cases = default_cases
    if msoa_case is None:
        msoa_case = default_msoa
    if shard_case is None:
        shard_case = default_shard_case(quick=quick)
    return {
        "bench": "scale",
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": [_run_single_case(case) for case in cases],
        "msoa": _run_msoa_case(msoa_case),
        "shard": _run_shard_case(shard_case),
    }


def write_scale_bench(
    payload: dict, path: str | pathlib.Path = SCALE_BENCH_PATH
) -> pathlib.Path:
    """Write a scale-bench payload to disk (default ``BENCH_scale.json``)."""
    target = pathlib.Path(path)
    try:
        target.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError as error:
        raise ConfigurationError(
            f"cannot write bench results to {target}: {error}"
        ) from error
    return target


def load_scale_bench(path: str | pathlib.Path) -> dict:
    """Read a previously written scale-bench payload."""
    target = pathlib.Path(path)
    try:
        payload = json.loads(target.read_text())
    except OSError as error:
        raise ConfigurationError(
            f"cannot read bench baseline {target}: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"bench baseline {target} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict) or payload.get("bench") != "scale":
        raise ConfigurationError(
            f"bench baseline {target} is not a scale-bench payload"
        )
    return payload


def _fmt_ms(value: float | None) -> str:
    return f"{value:>10.1f}" if value is not None else f"{'-':>10}"


def _fmt_x(value: float | None) -> str:
    return f"{value:>7.1f}x" if value is not None else f"{'-':>8}"


def _gated_ratios(payload: dict) -> dict[str, dict[str, float | None]]:
    """Every gated ratio in a payload, keyed case name → metric → value.

    This is the single source of truth for which cases exist — the
    ``--against`` comparison table iterates the *union* of these names
    from both payloads, so a case unknown to one side (e.g. a freshly
    added shard case) is surfaced as new/absent instead of silently
    skipped.
    """
    ratios: dict[str, dict[str, float | None]] = {}
    for row in payload.get("cases", []):
        ratios[row["case"]] = {key: row.get(key) for key in _SPEEDUP_KEYS}
    msoa = payload.get("msoa")
    if msoa:
        ratios[msoa["case"]] = {
            "incremental_speedup": msoa.get("incremental_speedup")
        }
    shard = payload.get("shard")
    if shard:
        ratios[shard["case"]] = {
            "sharded_speedup": shard.get("sharded_speedup")
        }
    return ratios


def render_scale_bench(payload: dict, baseline: dict | None = None) -> str:
    """A terminal-friendly summary of one scale-bench payload.

    With ``baseline`` (the ``--against`` artifact) a comparison table of
    every gated ratio follows, covering the union of case names from
    both payloads: cases only in the fresh payload are marked ``(new)``,
    cases only in the baseline ``absent``.
    """
    lines = [
        f"scale bench (quick={payload['quick']})",
        f"{'case':<14} {'bids':>7} {'ref ms':>10} {'fast ms':>10} "
        f"{'col ms':>10} {'col/ref':>8} {'col/fast':>8} {'paybatch':>8} "
        f"{'equal':>6}",
    ]
    for row in payload["cases"]:
        lines.append(
            f"{row['case']:<14} {row['bids']:>7} "
            f"{_fmt_ms(row['reference_ms'])} {_fmt_ms(row['fast_ms'])} "
            f"{_fmt_ms(row['columnar_ms'])} "
            f"{_fmt_x(row['speedup_columnar'])} "
            f"{_fmt_x(row['columnar_vs_fast'])} "
            f"{_fmt_x(row['payment_batch_speedup'])} "
            f"{str(row['equivalent']):>6}"
        )
    msoa = payload.get("msoa")
    if msoa:
        lines.append(
            f"{msoa['case']:<14} {msoa['bids']:>7} x{msoa['rounds']} rounds: "
            f"incremental {msoa['incremental_ms_per_round']:.1f} ms/round "
            f"vs cold {msoa['cold_ms_per_round']:.1f} ms/round "
            f"({_fmt_x(msoa['incremental_speedup']).strip()}), "
            f"equal {msoa['equivalent']}"
        )
    shard = payload.get("shard")
    if shard:
        throughput = shard.get("auctions_per_sec")
        lines.append(
            f"{shard['case']:<14} {shard['bids']:>7} x{shard['rounds']} "
            f"rounds, {shard['shards']} shards "
            f"({shard['demand_units']} demand units): "
            f"{throughput:.1f} auctions/sec, "
            f"p99 {shard['p99_round_ms']:.1f} ms/round"
            + (
                f", vs unsharded {_fmt_x(shard['sharded_speedup']).strip()}"
                f", winners equal {shard['equivalent']}"
                if shard.get("sharded_speedup") is not None
                else ""
            )
        )
    if baseline is not None:
        fresh, base = _gated_ratios(payload), _gated_ratios(baseline)
        lines.append("")
        lines.append("vs baseline (gated ratios):")
        lines.append(f"{'case':<18} {'metric':<22} {'base':>8} {'now':>8}")
        for name in [*fresh, *(n for n in base if n not in fresh)]:
            metrics = {**base.get(name, {}), **fresh.get(name, {})}
            for metric in metrics:
                old = base.get(name, {}).get(metric)
                new = fresh.get(name, {}).get(metric)
                old_s = _fmt_x(old) if name in base else f"{'(new)':>8}"
                new_s = _fmt_x(new) if name in fresh else f"{'absent':>8}"
                lines.append(f"{name:<18} {metric:<22} {old_s} {new_s}")
    return "\n".join(lines)


_SPEEDUP_KEYS = ("speedup_columnar", "columnar_vs_fast", "payment_batch_speedup")


def check_scale_regression(
    payload: dict,
    baseline: dict,
    *,
    tolerance: float = REGRESSION_TOLERANCE,
) -> list[str]:
    """Compare a fresh payload against a committed baseline.

    Returns a (possibly empty) list of human-readable failures.  Only
    cases present in *both* payloads are compared (the quick tier omits
    the 10^5-bid case), and only speedup *ratios* are gated — absolute
    wall-clock shifts with the machine, but a ratio measured within one
    run is hardware-normalized.  Any non-equivalent case fails outright
    regardless of timing.
    """
    if not 0 <= tolerance < 1:
        raise ConfigurationError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    failures: list[str] = []
    baseline_cases = {
        row["case"]: row for row in baseline.get("cases", [])
    }
    for row in payload.get("cases", []):
        if not row.get("equivalent", True):
            failures.append(f"{row['case']}: engines diverged")
        base = baseline_cases.get(row["case"])
        if base is None:
            continue
        for key in _SPEEDUP_KEYS:
            new, old = row.get(key), base.get(key)
            if new is None or old is None:
                continue
            if new < old * (1.0 - tolerance):
                failures.append(
                    f"{row['case']}: {key} regressed "
                    f"{old:.2f}x -> {new:.2f}x "
                    f"(floor {old * (1.0 - tolerance):.2f}x)"
                )
    msoa, base_msoa = payload.get("msoa"), baseline.get("msoa")
    if msoa:
        if not msoa.get("equivalent", True):
            failures.append(
                f"{msoa['case']}: incremental and cold-rebuild diverged"
            )
        if base_msoa and msoa["case"] == base_msoa["case"]:
            new = msoa.get("incremental_speedup")
            old = base_msoa.get("incremental_speedup")
            if (
                new is not None
                and old is not None
                and new < old * (1.0 - tolerance)
            ):
                failures.append(
                    f"{msoa['case']}: incremental_speedup regressed "
                    f"{old:.2f}x -> {new:.2f}x "
                    f"(floor {old * (1.0 - tolerance):.2f}x)"
                )
    shard, base_shard = payload.get("shard"), baseline.get("shard")
    if shard:
        # `equivalent` is None when the unsharded twin was not run (the
        # 10^6-unit full tier); only an explicit False is a divergence.
        if shard.get("equivalent") is False:
            failures.append(
                f"{shard['case']}: sharded winners diverged from unsharded"
            )
        if base_shard and shard["case"] == base_shard["case"]:
            new = shard.get("sharded_speedup")
            old = base_shard.get("sharded_speedup")
            if (
                new is not None
                and old is not None
                and new < old * (1.0 - tolerance)
            ):
                failures.append(
                    f"{shard['case']}: sharded_speedup regressed "
                    f"{old:.2f}x -> {new:.2f}x "
                    f"(floor {old * (1.0 - tolerance):.2f}x)"
                )
    return failures
