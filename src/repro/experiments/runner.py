"""Shared machinery for the figure experiments.

Builds markets from :class:`~repro.workload.scenarios.PaperScenario`
presets, runs mechanisms across seeds, and aggregates the per-seed
measurements into the means the result tables report.
"""

from __future__ import annotations

import math
import statistics
from collections.abc import Callable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.core.outcomes import AuctionOutcome
from repro.core.registry import get_spec
from repro.core.variants import HorizonScenario
from repro.core.wsp import WSPInstance
from repro.demand.estimator import NoisyOracleEstimator
from repro.errors import ConfigurationError, SolverError
from repro.experiments.config import ExperimentConfig
from repro.obs.profiler import profiled
from repro.obs.runtime import activate
from repro.workload.bidgen import (
    ensure_online_feasible,
    generate_capacities,
    generate_round,
    repair_horizon_capacities,
)
from repro.workload.scenarios import PaperScenario

__all__ = [
    "mean_over_seeds",
    "build_single_round",
    "build_horizon_scenario",
    "run_configured_mechanism",
]


def mean_over_seeds(
    seeds: Sequence[int], measure: Callable[[int], float]
) -> float:
    """Average ``measure(seed)`` over the seed set (NaN results skipped).

    Skipping lets a seed whose random market happens to be degenerate
    (e.g. zero optimum) drop out without poisoning the mean; at least one
    seed must produce a finite value.
    """
    values = []
    for seed in seeds:
        value = measure(seed)
        if math.isfinite(value):
            values.append(value)
    if not values:
        raise ConfigurationError("no seed produced a finite measurement")
    return statistics.fmean(values)


@profiled("experiments.mechanism")
def run_configured_mechanism(
    config: ExperimentConfig,
    instance: WSPInstance,
    *,
    seed: int = 0,
    **overrides: Any,
) -> AuctionOutcome:
    """Run the config's single-round mechanism on one instance.

    The sweep-wide knobs (``parallelism``, ``engine``, the seed for
    stochastic mechanisms) and any ``overrides`` are filtered against the
    registry spec's declared options, so the same dispatch call serves
    SSAM and every baseline without per-mechanism plumbing.

    When the config carries an ``observability`` request it is activated
    (idempotently) before dispatch, so sweep loops get tracing/metrics
    without per-call plumbing.
    """
    activate(config.observability)
    spec = get_spec(config.mechanism)
    options: dict[str, Any] = {
        "parallelism": config.parallelism,
        "engine": config.engine,
        "seed": seed,
    }
    options.update(overrides)
    accepted = {k: v for k, v in options.items() if k in spec.options}
    return spec.loader()(instance, **accepted)


def build_single_round(
    scenario: PaperScenario, seed: int
) -> WSPInstance:
    """One single-stage market instance for a scenario preset."""
    rng = np.random.default_rng(seed)
    return generate_round(scenario.market_config(), rng)


def build_horizon_scenario(
    scenario: PaperScenario,
    seed: int,
    *,
    estimation_sigma: float,
    max_regenerations: int = 8,
) -> HorizonScenario:
    """A full online horizon with true and estimator-noise demand views.

    The true horizon comes from the market generator; the estimated view
    shares its bids but perturbs each round's demand through a
    :class:`~repro.demand.estimator.NoisyOracleEstimator` with the given
    sigma.  Estimated demands are clamped to what the round's bid pool can
    actually cover, so plain MSOA's handicap is mis-sizing, never
    infeasibility by construction.

    On the rare draw whose capacities cannot be repaired into an
    online-feasible horizon, the builder redraws with a derived sub-seed
    (rejection sampling, up to ``max_regenerations`` attempts) — the
    paper's evaluation implicitly conditions on feasible markets.
    """
    cache_key = (scenario, seed, estimation_sigma)
    cached = _HORIZON_CACHE.get(cache_key)
    if cached is not None:
        return cached
    last_error: Exception | None = None
    for attempt in range(max_regenerations):
        try:
            built = _build_horizon_once(
                scenario,
                seed + attempt * 7_368_787,
                estimation_sigma=estimation_sigma,
            )
            if len(_HORIZON_CACHE) > 256:
                _HORIZON_CACHE.clear()
            _HORIZON_CACHE[cache_key] = built
            return built
        except (ConfigurationError, SolverError) as error:
            last_error = error
    raise ConfigurationError(
        f"could not build a feasible horizon after {max_regenerations} "
        f"attempts (seed {seed}): {last_error}"
    )


# Horizon builds are expensive (feasibility repair solves MILPs) and the
# figure sweeps request the same (scenario, seed, sigma) repeatedly —
# memoization is safe because scenarios and the built horizons are
# immutable.
_HORIZON_CACHE: dict[tuple[PaperScenario, int, float], HorizonScenario] = {}


def _build_horizon_once(
    scenario: PaperScenario,
    seed: int,
    *,
    estimation_sigma: float,
) -> HorizonScenario:
    rng = np.random.default_rng(seed)
    config = scenario.market_config()
    capacities = generate_capacities(
        config, rng, capacity_range=scenario.capacity_range
    )
    estimator = NoisyOracleEstimator(
        rng=np.random.default_rng(seed + 999_983), sigma=estimation_sigma
    )
    rounds_true = []
    rounds_estimated = []
    for _ in range(scenario.rounds):
        instance = generate_round(config, rng)
        rounds_true.append(instance)
        estimated = estimator.estimate(instance.demand)
        estimated = _clamp_to_coverage(estimated, instance)
        rounds_estimated.append(
            WSPInstance(
                bids=instance.bids,
                demand=estimated,
                price_ceiling=instance.price_ceiling,
            )
        )
    # Conservative estimation means estimated >= true demand per buyer, so
    # repairing against the estimated stream covers both views; the online
    # probe then guarantees neither MSOA nor MSOA-DA ever corners itself.
    capacities = repair_horizon_capacities(rounds_estimated, capacities)
    capacities = ensure_online_feasible(rounds_estimated, capacities)
    capacities = ensure_online_feasible(rounds_true, capacities)
    return HorizonScenario(
        rounds_estimated=tuple(rounds_estimated),
        rounds_true=tuple(rounds_true),
        capacities=capacities,
    )


def _clamp_to_coverage(
    demand: Mapping[int, int], instance: WSPInstance
) -> dict[int, int]:
    """Cap each buyer's demand at its guaranteed distinct-seller coverage.

    Counts only each seller's *first* bid: since at most one alternative
    bid per seller can win, the set of first bids is the one selection
    known to be simultaneously playable (the generator anchors its
    feasibility repair on it), so clamping to it keeps the estimated
    round feasible no matter how the estimator over-shoots.
    """
    bid0_covering: dict[int, set[int]] = {}
    for bid in instance.bids:
        if bid.index != 0:
            continue
        for buyer in bid.covered:
            bid0_covering.setdefault(buyer, set()).add(bid.seller)
    return {
        buyer: min(units, len(bid0_covering.get(buyer, ())))
        for buyer, units in demand.items()
        if units > 0 and bid0_covering.get(buyer)
    }
