"""Experiment harness regenerating the paper's Figures 3–6.

``figNN`` functions run the sweeps and return printable result tables;
:mod:`repro.experiments.config` holds the sweep axes and the quick/full
presets.
"""

from repro.experiments.bench_engine import (
    EngineBenchCase,
    run_engine_bench,
    write_engine_bench,
)
from repro.experiments.config import FULL, QUICK, ExperimentConfig
from repro.experiments.figures import fig3a, fig3b, fig4a, fig4b, fig5a, fig6a, fig6b
from repro.experiments.report import (
    PanelReport,
    ShapeCheck,
    build_report,
    render_report,
)
from repro.experiments.storage import (
    diff_tables,
    load_outcome,
    load_table,
    save_csv,
    save_outcome,
    save_table,
)
from repro.experiments.runner import (
    build_horizon_scenario,
    build_single_round,
    mean_over_seeds,
    run_configured_mechanism,
)

__all__ = [
    "FULL",
    "QUICK",
    "ExperimentConfig",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig6a",
    "fig6b",
    "PanelReport",
    "ShapeCheck",
    "build_report",
    "render_report",
    "build_horizon_scenario",
    "build_single_round",
    "mean_over_seeds",
    "run_configured_mechanism",
    "diff_tables",
    "load_table",
    "save_csv",
    "save_table",
    "load_outcome",
    "save_outcome",
    "EngineBenchCase",
    "run_engine_bench",
    "write_engine_bench",
]
