"""Perf-regression harness for the auction engine.

Times the fast incremental engine (:mod:`repro.core.engine`) against the
reference rescan-everything loop on representative instances — the
Figure-4(b) microservice sweep plus a large-n stress case where the
O(n²m) critical-payment phase dominates — and emits ``BENCH_engine.json``
so future PRs can track the trajectory (and CI can flag regressions by
diffing the recorded speedups).

Every timed pair is also checked for outcome equivalence through the
shared ``AuctionOutcome.to_dict()`` schema: a speedup that changes
winners, payments, or dual certificates is a bug, not a win.

Run from the CLI::

    repro-edge-auction bench                 # full harness
    repro-edge-auction bench --quick         # reduced cases (CI-sized)
    repro-edge-auction bench --parallelism 8 # payment-replay worker count
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from dataclasses import dataclass

import numpy as np

from repro.core.ssam import PaymentRule, run_ssam
from repro.errors import ConfigurationError
from repro.workload.bidgen import MarketConfig, generate_round

__all__ = ["EngineBenchCase", "run_engine_bench", "write_engine_bench"]

BENCH_PATH = "BENCH_engine.json"
"""Default output file (repo root); tracked so the trajectory is visible."""


@dataclass(frozen=True)
class EngineBenchCase:
    """One timed market instance of the engine bench.

    ``repeats`` controls best-of-N timing (minimum over repeats, the
    standard way to suppress scheduler noise in micro-benchmarks).
    """

    name: str
    config: MarketConfig
    seed: int = 2019
    repeats: int = 3


def _fig4b_case(n_sellers: int, repeats: int) -> EngineBenchCase:
    return EngineBenchCase(
        name=f"fig4b_s{n_sellers}",
        config=MarketConfig(n_sellers=n_sellers),
        repeats=repeats,
    )


def default_cases(*, quick: bool = False) -> list[EngineBenchCase]:
    """The Figure-4(b) sweep plus the large-n stress case.

    ``quick`` shrinks the sweep and the stress case to CI-sized runs
    while keeping the same qualitative coverage.
    """
    if quick:
        sweep = [_fig4b_case(n, repeats=2) for n in (25, 45)]
        stress_config = MarketConfig(
            n_sellers=100,
            n_buyers=12,
            demand_units_range=(2, 5),
            coverage_range=(1, 4),
        )
        sweep.append(
            EngineBenchCase(name="stress_large_n", config=stress_config, repeats=1)
        )
        return sweep
    sweep = [_fig4b_case(n, repeats=3) for n in (25, 35, 45, 55, 65, 75)]
    stress_config = MarketConfig(
        n_sellers=400,
        n_buyers=40,
        demand_units_range=(3, 8),
        coverage_range=(1, 5),
    )
    sweep.append(
        EngineBenchCase(name="stress_large_n", config=stress_config, repeats=1)
    )
    return sweep


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_engine_bench(
    *,
    parallelism: int = 1,
    quick: bool = False,
    cases: list[EngineBenchCase] | None = None,
) -> dict:
    """Time every case on both engines and return the bench payload.

    Per case: wall-clock for the reference path, the fast engine serial,
    and the fast engine with ``parallelism`` payment workers — all under
    ``PaymentRule.CRITICAL_RERUN``, the rule whose per-winner replays
    dominate runtime — plus an equivalence verdict comparing the two
    engines' full outcome dicts.
    """
    if parallelism < 1:
        raise ConfigurationError("parallelism must be a positive integer")
    if cases is None:
        cases = default_cases(quick=quick)
    results: list[dict] = []
    for case in cases:
        rng = np.random.default_rng(case.seed)
        instance = generate_round(case.config, rng)

        reference_outcome = run_ssam(
            instance, payment_rule=PaymentRule.CRITICAL_RERUN, engine="reference"
        )
        fast_outcome = run_ssam(
            instance, payment_rule=PaymentRule.CRITICAL_RERUN, engine="fast"
        )
        equivalent = reference_outcome.to_dict() == fast_outcome.to_dict()

        reference_s = _best_of(
            case.repeats,
            lambda: run_ssam(
                instance,
                payment_rule=PaymentRule.CRITICAL_RERUN,
                engine="reference",
            ),
        )
        fast_s = _best_of(
            case.repeats,
            lambda: run_ssam(
                instance, payment_rule=PaymentRule.CRITICAL_RERUN, engine="fast"
            ),
        )
        parallel_s = fast_s
        if parallelism > 1:
            parallel_s = _best_of(
                case.repeats,
                lambda: run_ssam(
                    instance,
                    payment_rule=PaymentRule.CRITICAL_RERUN,
                    engine="fast",
                    parallelism=parallelism,
                ),
            )
        results.append(
            {
                "case": case.name,
                "bids": len(instance.bids),
                "demand_units": instance.total_demand,
                "winners": len(fast_outcome.winners),
                "equivalent": equivalent,
                "reference_ms": reference_s * 1000.0,
                "fast_ms": fast_s * 1000.0,
                "fast_parallel_ms": parallel_s * 1000.0,
                "speedup_fast": reference_s / fast_s if fast_s > 0 else None,
                "speedup_parallel": (
                    reference_s / parallel_s if parallel_s > 0 else None
                ),
            }
        )
    return {
        "bench": "engine",
        "quick": quick,
        "parallelism": parallelism,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": results,
    }


def write_engine_bench(
    payload: dict, path: str | pathlib.Path = BENCH_PATH
) -> pathlib.Path:
    """Write a bench payload to disk (default: ``BENCH_engine.json``)."""
    target = pathlib.Path(path)
    try:
        target.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError as error:
        raise ConfigurationError(
            f"cannot write bench results to {target}: {error}"
        ) from error
    return target


def render_engine_bench(payload: dict) -> str:
    """A terminal-friendly summary of one bench payload.

    Rows whose parallel path is *slower* than the reference loop
    (``speedup_parallel < 1``) are flagged inline and recapped in a
    trailing ``WARNING`` line — a sub-1x "speedup" means the process
    pool's overhead exceeded its payoff on that case and should be
    treated as a regression signal, not noise.
    """
    lines = [
        f"engine bench (parallelism={payload['parallelism']}, "
        f"quick={payload['quick']})",
        f"{'case':<16} {'bids':>5} {'ref ms':>9} {'fast ms':>9} "
        f"{'par ms':>9} {'speedup':>8} {'equal':>6}",
    ]
    slow: list[str] = []
    for row in payload["cases"]:
        speedup = row["speedup_parallel"]
        flag = ""
        if speedup is not None and speedup < 1.0:
            slow.append(row["case"])
            flag = "  [SLOWER than reference]"
        lines.append(
            f"{row['case']:<16} {row['bids']:>5} {row['reference_ms']:>9.2f} "
            f"{row['fast_ms']:>9.2f} {row['fast_parallel_ms']:>9.2f} "
            f"{speedup:>7.1f}x {str(row['equivalent']):>6}{flag}"
        )
    if slow:
        lines.append(
            "WARNING: parallel engine slower than the reference on: "
            + ", ".join(slow)
        )
    return "\n".join(lines)
