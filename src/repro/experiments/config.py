"""Experiment-harness configuration.

Every figure experiment takes an :class:`ExperimentConfig` controlling the
seed set (results are averaged across seeds) and a *quick* mode that
shrinks the sweep for CI-speed benchmark runs while preserving the
qualitative shape.  Paper-scale runs use the full defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs.runtime import ObservabilityConfig

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.faults.models import FaultPlan
    from repro.faults.policies import ResiliencePolicy

__all__ = ["ExperimentConfig", "QUICK", "FULL"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Sweep-wide knobs shared by all figure experiments.

    Attributes
    ----------
    seeds:
        Master seeds; every reported number is the mean over these.
    microservice_counts:
        The x-axis of Figures 3(a)/3(b)/5(a)/6(b).
    request_levels:
        The request-volume series of Figures 3(b)/5(a)/6(b).
    rounds_axis:
        The x-axis of Figure 6(a).
    bids_axis:
        The J series of Figures 3(a)/6(a).
    horizon_rounds:
        T for the online experiments (paper default 10).
    estimation_sigma:
        Demand-estimation noise for plain MSOA (0 = oracle; the DA
        variant always gets 0).
    capacity_relaxation:
        The Θ inflation factor of the RC/OA variants.
    parallelism:
        Worker processes for critical-payment replays inside every
        mechanism run of the sweep (forwarded to ``run_ssam``/``run_msoa``;
        1 = serial).  ``"auto"`` sizes the pool per instance — serial on
        small cases, parallel on large ones.
    mechanism:
        Registry name of the single-round mechanism the single-stage
        panels (3a/3b/4a) run; ``"ssam"`` reproduces the paper.
    engine:
        Selection engine every mechanism run of the sweep uses where
        applicable: ``"fast"`` (default), ``"reference"``, or
        ``"columnar"`` (numpy-vectorized kernels).
    observability:
        Optional :class:`~repro.obs.ObservabilityConfig`; when set, the
        experiment runner activates tracing/metrics before dispatching
        mechanism runs (``None``, the default, keeps observability off).
    faults:
        Optional :class:`~repro.faults.FaultPlan` executed by every
        *online* mechanism run of the sweep (MSOA variants and registry
        adapters).  ``None`` (default) and null plans leave the sweep
        bit-identical to an unfaulted one.
    resilience:
        Optional :class:`~repro.faults.ResiliencePolicy` for the fault
        runs; requires ``faults``.
    """

    seeds: tuple[int, ...] = (11, 23, 37, 53, 71)
    microservice_counts: tuple[int, ...] = (25, 35, 45, 55, 65, 75)
    request_levels: tuple[int, ...] = (100, 200)
    rounds_axis: tuple[int, ...] = (1, 3, 5, 7, 9, 11, 13, 15)
    bids_axis: tuple[int, ...] = (1, 2, 3, 4)
    horizon_rounds: int = 10
    estimation_sigma: float = 0.35
    capacity_relaxation: float = 2.0
    parallelism: int | str = 1
    mechanism: str = "ssam"
    engine: str = "fast"
    observability: ObservabilityConfig | None = None
    faults: "FaultPlan | None" = None
    resilience: "ResiliencePolicy | None" = None

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigurationError("at least one seed is required")
        if self.horizon_rounds <= 0:
            raise ConfigurationError("horizon_rounds must be positive")
        if self.estimation_sigma < 0:
            raise ConfigurationError("estimation_sigma must be non-negative")
        if self.capacity_relaxation < 1.0:
            raise ConfigurationError("capacity_relaxation must be >= 1")
        from repro.core.engine import validate_parallelism

        validate_parallelism(self.parallelism)
        if self.engine not in ("fast", "reference", "columnar"):
            raise ConfigurationError(
                "engine must be 'fast', 'reference' or 'columnar', "
                f"got {self.engine!r}"
            )
        if self.observability is not None and not isinstance(
            self.observability, ObservabilityConfig
        ):
            raise ConfigurationError(
                "observability must be an ObservabilityConfig or None, got "
                f"{type(self.observability).__name__}"
            )
        if self.faults is not None or self.resilience is not None:
            from repro.faults.models import FaultPlan
            from repro.faults.policies import ResiliencePolicy

            if self.faults is None:
                raise ConfigurationError(
                    "resilience requires faults (a policy alone has nothing "
                    "to recover from)"
                )
            if not isinstance(self.faults, FaultPlan):
                raise ConfigurationError(
                    "faults must be a FaultPlan or None, got "
                    f"{type(self.faults).__name__}"
                )
            if self.resilience is not None and not isinstance(
                self.resilience, ResiliencePolicy
            ):
                raise ConfigurationError(
                    "resilience must be a ResiliencePolicy or None, got "
                    f"{type(self.resilience).__name__}"
                )
        # Resolve against the registry so a typo fails at configuration
        # time (with the known names), not mid-sweep.
        from repro.core.registry import get_spec

        if get_spec(self.mechanism).kind != "single":
            raise ConfigurationError(
                f"mechanism {self.mechanism!r} is not a single-round "
                "mechanism; the figure sweeps dispatch per round"
            )


FULL = ExperimentConfig()
"""Paper-scale sweep (5 seeds × full axes)."""

QUICK = ExperimentConfig(
    seeds=(11, 23),
    microservice_counts=(25, 45, 65),
    rounds_axis=(1, 5, 10, 15),
    bids_axis=(1, 2, 3),
    horizon_rounds=6,
)
"""Reduced sweep for fast benchmark runs; same qualitative shape."""
