"""One-shot experiment report generation.

`build_report` runs every figure experiment at a chosen configuration and
assembles a single markdown document: each panel's table, a spark-line of
its headline series, and an automatic check of the paper's shape claims
(recorded as pass/fail lines, never silently dropped).  The repository's
EXPERIMENTS.md data section is generated this way, so the published
record and the code that produced it cannot drift apart.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import ResultTable
from repro.analysis.visualize import sparkline
from repro.experiments.config import FULL, ExperimentConfig
from repro.experiments.figures import fig3a, fig3b, fig4a, fig4b, fig5a, fig6a, fig6b

__all__ = ["ShapeCheck", "PanelReport", "build_report", "render_report"]


@dataclass(frozen=True)
class ShapeCheck:
    """One shape claim from the paper, checked against measured data."""

    claim: str
    passed: bool
    detail: str = ""


@dataclass(frozen=True)
class PanelReport:
    """One figure panel's measured table plus its shape verdicts."""

    panel: str
    table: ResultTable
    checks: tuple[ShapeCheck, ...]
    headline_series: Mapping[str, list[float]]


def _series(table: ResultTable, value_col: str, **filters: object) -> list[float]:
    rows = [
        row
        for row in table.rows
        if all(row.get(k) == v for k, v in filters.items())
    ]
    return [float(row[value_col]) for row in rows]


def _check_fig3a(table: ResultTable) -> tuple[ShapeCheck, ...]:
    single = _series(table, "ratio", bids_per_seller=1)
    within = all(
        row["ratio"] <= row["bound_WXi"] + 1e-9 for row in table.rows
    )
    return (
        ShapeCheck(
            claim="J=1 near-optimal (paper: ≈1)",
            passed=all(r <= 1.5 for r in single),
            detail=f"J=1 ratios {['%.3f' % r for r in single]}",
        ),
        ShapeCheck(
            claim="every ratio within the W·Ξ bound (Thm 3)",
            passed=within,
        ),
    )


def _check_cost_table(table: ResultTable, optimal_col: str) -> tuple[ShapeCheck, ...]:
    ordering = all(
        row["total_payment"] >= row["social_cost"] - 1e-9
        and row["social_cost"] >= row[optimal_col] - 1e-6
        for row in table.rows
    )
    growth = {}
    for row in table.rows:
        growth.setdefault(row["requests"], []).append(row["social_cost"])
    req_levels = sorted(growth)
    requests_effect = (
        len(req_levels) < 2
        or np.mean(growth[req_levels[-1]]) > np.mean(growth[req_levels[0]])
    )
    rising = all(
        costs == sorted(costs) or costs[-1] > costs[0]
        for costs in growth.values()
    )
    return (
        ShapeCheck(
            claim="payment ≥ social cost ≥ optimum", passed=ordering
        ),
        ShapeCheck(
            claim="more requests → higher cost", passed=bool(requests_effect)
        ),
        ShapeCheck(
            claim="cost grows with #microservices", passed=bool(rising)
        ),
    )


def _check_fig4a(table: ResultTable) -> tuple[ShapeCheck, ...]:
    return (
        ShapeCheck(
            claim="every payment ≥ its price (IR, Thm 5)",
            passed=all(
                row["payment"] >= row["price"] - 1e-9 for row in table.rows
            ),
        ),
    )


def _check_fig4b(table: ResultTable) -> tuple[ShapeCheck, ...]:
    fast = all(row["runner_up_ms"] < 100.0 for row in table.rows)
    times = [row["runner_up_ms"] for row in table.rows]
    return (
        ShapeCheck(claim="< 100 ms per round (paper)", passed=fast),
        ShapeCheck(
            claim="runtime grows with market size",
            passed=times[-1] > times[0],
            detail=f"{times[0]:.3f} ms → {times[-1]:.3f} ms",
        ),
    )


def _check_fig5a(table: ResultTable) -> tuple[ShapeCheck, ...]:
    at_least_one = all(
        row[name] >= 1.0 - 0.05
        for row in table.rows
        for name in ("MSOA", "MSOA-DA", "MSOA-RC", "MSOA-OA")
    )
    da_wins = np.mean(
        [row["MSOA-DA"] - row["MSOA"] for row in table.rows]
    ) <= 0.0
    return (
        ShapeCheck(claim="online never beats clairvoyant", passed=at_least_one),
        ShapeCheck(
            claim="MSOA-DA ≤ MSOA on average (accurate estimation pays)",
            passed=bool(da_wins),
        ),
    )


def _check_fig6a(table: ResultTable) -> tuple[ShapeCheck, ...]:
    j_values = sorted({row["bids_J"] for row in table.rows})
    means = {
        j: float(np.mean([r["ratio"] for r in table.rows if r["bids_J"] == j]))
        for j in j_values
    }
    j_hurts = len(j_values) < 2 or means[j_values[-1]] >= means[j_values[0]] - 0.1
    return (
        ShapeCheck(
            claim="larger J worsens the ratio (paper)",
            passed=bool(j_hurts),
            detail=", ".join(f"J={j}: {m:.3f}" for j, m in means.items()),
        ),
    )


_PANELS: tuple[tuple[str, Callable, Callable, tuple[str, str]], ...] = (
    ("Figure 3(a)", fig3a, _check_fig3a, ("ratio", "microservices")),
    ("Figure 3(b)", fig3b, lambda t: _check_cost_table(t, "optimal_cost"),
     ("social_cost", "microservices")),
    ("Figure 4(a)", fig4a, _check_fig4a, ("payment", "winner")),
    ("Figure 4(b)", fig4b, _check_fig4b, ("runner_up_ms", "microservices")),
    ("Figure 5(a)", fig5a, _check_fig5a, ("MSOA", "microservices")),
    ("Figure 6(a)", fig6a, _check_fig6a, ("ratio", "rounds_T")),
    ("Figure 6(b)", fig6b, lambda t: _check_cost_table(t, "offline_optimal"),
     ("social_cost", "microservices")),
)


def build_report(config: ExperimentConfig = FULL) -> list[PanelReport]:
    """Run every panel experiment and evaluate its shape claims."""
    reports = []
    for panel, experiment, checker, (value_col, _) in _PANELS:
        table = experiment(config)
        series = [
            float(row[value_col])
            for row in table.rows
            if row.get(value_col) is not None
        ]
        reports.append(
            PanelReport(
                panel=panel,
                table=table,
                checks=tuple(checker(table)),
                headline_series={value_col: series},
            )
        )
    return reports


def render_report(reports: list[PanelReport]) -> str:
    """Render panel reports as one markdown document."""
    lines = []
    for report in reports:
        lines.append(f"## {report.panel}")
        lines.append("")
        lines.append("```")
        lines.append(report.table.render())
        lines.append("```")
        for name, series in report.headline_series.items():
            if series:
                lines.append(f"`{name}` across rows: `{sparkline(series)}`")
        lines.append("")
        for check in report.checks:
            mark = "PASS" if check.passed else "FAIL"
            detail = f" — {check.detail}" if check.detail else ""
            lines.append(f"* **{mark}** {check.claim}{detail}")
        lines.append("")
    return "\n".join(lines)
