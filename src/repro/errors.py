"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch one type to handle any library-level failure.  Subclasses
distinguish configuration mistakes from infeasible problem instances and
from solver failures, because callers typically recover from them
differently (fix the input vs. relax the instance vs. fall back to another
solver).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InfeasibleInstanceError",
    "SolverError",
    "MechanismError",
    "CapacityExceededError",
    "SimulationError",
    "ObservabilityError",
    "TransportError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An input object or parameter was malformed or out of range.

    Raised during validation, before any computation starts, so that bad
    configurations fail fast with a message naming the offending field.
    """


class InfeasibleInstanceError(ReproError):
    """A winner-selection instance admits no feasible solution.

    For the single-stage problem this means some needy microservice cannot
    be covered by enough distinct sellers; for the online problem it can
    additionally mean the sellers' long-run capacities are insufficient.
    """


class SolverError(ReproError, RuntimeError):
    """An optimization backend failed or returned an unusable status."""


class MechanismError(ReproError, RuntimeError):
    """An auction mechanism reached an internally inconsistent state.

    This signals a bug in mechanism bookkeeping (e.g. a payment computed
    for a non-winner), never a user input problem.
    """


class CapacityExceededError(ReproError):
    """An operation would push a seller past its long-run sharing capacity."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation engine hit an invalid state."""


class ObservabilityError(ReproError, RuntimeError):
    """A trace stream is malformed or inconsistent with its own records.

    Raised by the trace readers (:func:`repro.obs.read_trace`,
    :func:`repro.obs.summarize`) — never by the write path, which must
    stay failure-free on the auction hot paths.
    """


class TransportError(ReproError, RuntimeError):
    """A message could not be routed on a :mod:`repro.dist` transport.

    Raised for sends to unregistered endpoints and for operations on a
    closed transport — the distributed analogues of a configuration
    mistake, surfaced at the messaging layer where they occur.
    """
