"""Statistical summaries for experiment sweeps.

The figure tables report seed means; this module adds the machinery a
careful evaluation wants on top: bootstrap confidence intervals, paired
comparisons between mechanisms on the same seeds, and a compact
:class:`SummaryStats` record used by the extended experiment reports.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "SummaryStats",
    "summarize",
    "bootstrap_ci",
    "paired_delta",
    "geometric_mean",
]


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread, and a bootstrap CI of one measured series."""

    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    n: int

    def overlaps(self, other: "SummaryStats") -> bool:
        """Whether the two 95% CIs overlap (a cheap 'not clearly different')."""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high


def _finite_array(values: Sequence[float], what: str) -> np.ndarray:
    """Validate a series is non-empty and finite before aggregating.

    Every aggregator here funnels input through this check: a NaN or
    ``inf`` in a measured series is an upstream bug (a diverged run, a
    ratio against a zero optimum), and letting it slip through produces
    NaN means/CIs that render as blank table cells instead of failing
    the experiment — the silent-aggregation bug class fixed piecemeal in
    ``mean_over_seeds`` and stamped out here for good.
    """
    if len(values) == 0:
        raise ConfigurationError(f"{what} needs at least one value")
    data = np.asarray(list(values), dtype=float)
    if np.any(~np.isfinite(data)):
        raise ConfigurationError(f"{what} got non-finite values in its series")
    return data


def bootstrap_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Deterministic for a given ``rng``; with one observation the interval
    degenerates to that point.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0,1), got {confidence}")
    data = _finite_array(values, "bootstrap")
    if len(data) == 1:
        return float(data[0]), float(data[0])
    rng = rng if rng is not None else np.random.default_rng(0)
    means = np.mean(
        rng.choice(data, size=(resamples, len(data)), replace=True), axis=1
    )
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def summarize(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> SummaryStats:
    """Full summary (mean/std/min/max/CI) of a measured series."""
    data = _finite_array(values, "summarize")
    low, high = bootstrap_ci(data, confidence=confidence, rng=rng)
    return SummaryStats(
        mean=float(np.mean(data)),
        std=float(np.std(data, ddof=1)) if len(data) > 1 else 0.0,
        minimum=float(np.min(data)),
        maximum=float(np.max(data)),
        ci_low=low,
        ci_high=high,
        n=len(data),
    )


def paired_delta(
    baseline: Sequence[float], treatment: Sequence[float]
) -> SummaryStats:
    """Summary of per-seed differences ``treatment − baseline``.

    Both series must come from the *same seeds in the same order* —
    pairing removes the between-seed variance that drowns small
    mechanism-level differences in unpaired comparisons.
    """
    if len(baseline) != len(treatment):
        raise ConfigurationError(
            f"paired series must have equal length, got {len(baseline)} "
            f"vs {len(treatment)}"
        )
    # Validate the inputs, not just the deltas: inf − inf = NaN would
    # otherwise surface as a confusing complaint about the differences.
    base = _finite_array(baseline, "paired_delta baseline")
    treat = _finite_array(treatment, "paired_delta treatment")
    return summarize(treat - base)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean — the right average for performance *ratios*.

    Rejects non-finite inputs outright: the old ``v <= 0`` screen let
    NaN through (NaN compares false) and silently averaged ``inf``.
    """
    data = _finite_array(values, "geometric mean")
    if np.any(data <= 0):
        raise ConfigurationError("geometric mean needs positive values")
    return float(math.exp(np.mean(np.log(data))))
