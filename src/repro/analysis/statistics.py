"""Statistical summaries for experiment sweeps.

The figure tables report seed means; this module adds the machinery a
careful evaluation wants on top: bootstrap confidence intervals, paired
comparisons between mechanisms on the same seeds, and a compact
:class:`SummaryStats` record used by the extended experiment reports.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "SummaryStats",
    "summarize",
    "bootstrap_ci",
    "paired_delta",
    "geometric_mean",
]


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread, and a bootstrap CI of one measured series."""

    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    n: int

    def overlaps(self, other: "SummaryStats") -> bool:
        """Whether the two 95% CIs overlap (a cheap 'not clearly different')."""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high


def bootstrap_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Deterministic for a given ``rng``; with one observation the interval
    degenerates to that point.
    """
    if len(values) == 0:
        raise ConfigurationError("bootstrap needs at least one value")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0,1), got {confidence}")
    data = np.asarray(list(values), dtype=float)
    if len(data) == 1:
        return float(data[0]), float(data[0])
    rng = rng if rng is not None else np.random.default_rng(0)
    means = np.mean(
        rng.choice(data, size=(resamples, len(data)), replace=True), axis=1
    )
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def summarize(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> SummaryStats:
    """Full summary (mean/std/min/max/CI) of a measured series."""
    if len(values) == 0:
        raise ConfigurationError("cannot summarize an empty series")
    data = np.asarray(list(values), dtype=float)
    if np.any(~np.isfinite(data)):
        raise ConfigurationError("series contains non-finite values")
    low, high = bootstrap_ci(data, confidence=confidence, rng=rng)
    return SummaryStats(
        mean=float(np.mean(data)),
        std=float(np.std(data, ddof=1)) if len(data) > 1 else 0.0,
        minimum=float(np.min(data)),
        maximum=float(np.max(data)),
        ci_low=low,
        ci_high=high,
        n=len(data),
    )


def paired_delta(
    baseline: Sequence[float], treatment: Sequence[float]
) -> SummaryStats:
    """Summary of per-seed differences ``treatment − baseline``.

    Both series must come from the *same seeds in the same order* —
    pairing removes the between-seed variance that drowns small
    mechanism-level differences in unpaired comparisons.
    """
    if len(baseline) != len(treatment):
        raise ConfigurationError(
            f"paired series must have equal length, got {len(baseline)} "
            f"vs {len(treatment)}"
        )
    deltas = [t - b for b, t in zip(baseline, treatment)]
    return summarize(deltas)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean — the right average for performance *ratios*."""
    if len(values) == 0:
        raise ConfigurationError("geometric mean needs at least one value")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geometric mean needs positive values")
    return float(math.exp(np.mean(np.log(np.asarray(list(values))))))
