"""Economic-property audits: truthfulness, individual rationality, budget.

These functions *empirically verify* the paper's Theorems 4, 5 and
Definition 5 on concrete instances: they re-run the mechanism under
counterfactual bids and check the resulting utilities.  The property-based
test suite drives them over randomized instances; the benchmarks use them
to produce the Figure-4(a) payment-vs-price data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.outcomes import AuctionOutcome
from repro.core.ssam import PaymentRule, run_ssam
from repro.core.wsp import WSPInstance
from repro.errors import InfeasibleInstanceError

__all__ = [
    "IRViolation",
    "audit_individual_rationality",
    "DeviationResult",
    "probe_truthfulness",
    "payment_price_pairs",
]


@dataclass(frozen=True)
class IRViolation:
    """A winner paid less than its announced price (should never exist)."""

    bid_key: tuple[int, int]
    price: float
    payment: float


def audit_individual_rationality(outcome: AuctionOutcome) -> list[IRViolation]:
    """Return every IR violation in ``outcome`` (Theorem 5: empty list).

    IR here is checked against the *selection* price — the price the bid
    entered the auction with — which under MSOA is the scaled price and
    therefore at least the announced price.
    """
    violations = []
    for winner in outcome.winners:
        if winner.payment < winner.bid.price - 1e-9:
            violations.append(
                IRViolation(
                    bid_key=winner.bid.key,
                    price=winner.bid.price,
                    payment=winner.payment,
                )
            )
    return violations


@dataclass(frozen=True)
class DeviationResult:
    """Outcome of one counterfactual price deviation.

    ``gain`` is the deviating seller's utility change; truthfulness means
    gain ≤ 0 for every deviation (Theorem 4).
    """

    bid_key: tuple[int, int]
    true_price: float
    deviated_price: float
    truthful_utility: float
    deviated_utility: float

    @property
    def gain(self) -> float:
        """Utility improvement from lying (≤ 0 under a truthful mechanism)."""
        return self.deviated_utility - self.truthful_utility


def probe_truthfulness(
    instance: WSPInstance,
    *,
    rng: np.random.Generator,
    deviations_per_bid: int = 3,
    payment_rule: PaymentRule = PaymentRule.CRITICAL_RERUN,
    price_factor_range: tuple[float, float] = (0.3, 3.0),
) -> list[DeviationResult]:
    """Test unilateral price deviations on every bid of ``instance``.

    For each bid, samples ``deviations_per_bid`` counterfactual prices
    (multiplicative factors of the true price), re-runs the auction with
    only that bid's price changed, and records the seller's utility under
    truth vs. deviation.  Bids are assumed truthful in ``instance``
    (``price == true_cost``); utilities use the true cost throughout.
    """
    truthful = run_ssam(instance, payment_rule=payment_rule)
    results: list[DeviationResult] = []
    low, high = price_factor_range
    for bid in instance.bids:
        truthful_utility = truthful.utility_of(bid.seller)
        for _ in range(deviations_per_bid):
            factor = float(rng.uniform(low, high))
            deviated_bid = bid.with_price(bid.cost * factor)
            deviated_instance = instance.replace_bid(deviated_bid)
            try:
                deviated = run_ssam(deviated_instance, payment_rule=payment_rule)
            except InfeasibleInstanceError:
                continue
            results.append(
                DeviationResult(
                    bid_key=bid.key,
                    true_price=bid.cost,
                    deviated_price=deviated_bid.price,
                    truthful_utility=truthful_utility,
                    deviated_utility=deviated.utility_of(bid.seller),
                )
            )
    return results


def payment_price_pairs(outcome: AuctionOutcome) -> list[tuple[float, float]]:
    """Per-winner ``(price, payment)`` pairs — the Figure 4(a) scatter."""
    return [(w.bid.price, w.payment) for w in outcome.winners]
