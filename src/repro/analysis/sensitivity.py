"""One-factor sensitivity analysis over mechanism parameters.

Ablation studies ask "how does metric M move when knob K turns?".
:func:`sweep_parameter` runs a measurement function across a grid of knob
values (averaging over seeds), fits the elasticity of the response, and
classifies the trend — the machinery behind the ablation benches'
assertions and a handy exploration tool in notebooks.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SensitivityResult", "sweep_parameter"]


@dataclass(frozen=True)
class SensitivityResult:
    """The response curve of one metric to one parameter.

    Attributes
    ----------
    parameter_values:
        The knob grid, in the order swept.
    responses:
        Mean metric value per knob setting (seed-averaged).
    slope:
        Least-squares linear slope of response vs parameter.
    relative_range:
        ``(max − min) / |mean|`` of the responses — a scale-free measure
        of how much the knob matters (0 = flat).
    trend:
        ``"increasing"``, ``"decreasing"``, or ``"flat"`` (monotone
        within tolerance; otherwise ``"non-monotone"``).
    """

    parameter_values: tuple[float, ...]
    responses: tuple[float, ...]
    slope: float
    relative_range: float
    trend: str

    @property
    def is_sensitive(self) -> bool:
        """Whether the metric moves more than 5% across the grid."""
        return self.relative_range > 0.05


def _classify(responses: Sequence[float], tolerance: float) -> str:
    diffs = np.diff(responses)
    if np.all(np.abs(diffs) <= tolerance):
        return "flat"
    if np.all(diffs >= -tolerance):
        return "increasing"
    if np.all(diffs <= tolerance):
        return "decreasing"
    return "non-monotone"


def sweep_parameter(
    values: Sequence[float],
    measure: Callable[[float, int], float],
    *,
    seeds: Sequence[int] = (11, 23, 37),
    flat_tolerance: float = 1e-9,
) -> SensitivityResult:
    """Measure ``measure(value, seed)`` across a knob grid.

    Parameters
    ----------
    values:
        Knob settings, at least two, in sweep order.
    measure:
        Callable returning the metric for one (value, seed) pair.
    seeds:
        Seed set averaged per knob setting.
    flat_tolerance:
        Absolute step size below which consecutive responses count as
        equal for trend classification.
    """
    if len(values) < 2:
        raise ConfigurationError("sensitivity sweep needs at least two values")
    if not seeds:
        raise ConfigurationError("at least one seed is required")
    responses = []
    for value in values:
        samples = [float(measure(value, seed)) for seed in seeds]
        if any(not np.isfinite(sample) for sample in samples):
            raise ConfigurationError(
                f"measurement at parameter {value} returned non-finite values"
            )
        responses.append(float(np.mean(samples)))
    xs = np.asarray(values, dtype=float)
    ys = np.asarray(responses)
    slope = float(np.polyfit(xs, ys, 1)[0]) if len(values) > 1 else 0.0
    mean = float(np.mean(ys))
    spread = float(np.max(ys) - np.min(ys))
    relative_range = spread / abs(mean) if mean else float("inf") if spread else 0.0
    return SensitivityResult(
        parameter_values=tuple(float(v) for v in values),
        responses=tuple(responses),
        slope=slope,
        relative_range=relative_range,
        trend=_classify(responses, flat_tolerance),
    )
