"""Plain-text result tables for the benchmark harness.

The benchmarks print the same rows/series the paper's figures plot; this
module renders them as aligned text tables so `pytest benchmarks/` output
is directly comparable to the paper, no plotting dependencies needed.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """A titled table of experiment rows.

    Columns are declared up front; rows are mappings from column name to
    value.  Numeric values are rendered with a fixed precision; missing
    cells render as ``-``.
    """

    title: str
    columns: Sequence[str]
    rows: list[Mapping[str, object]] = field(default_factory=list)
    precision: int = 3

    def add_row(self, **values: object) -> None:
        """Append a row (keyword arguments keyed by column name)."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ConfigurationError(
                f"row has unknown columns {sorted(unknown)}; "
                f"declared columns are {list(self.columns)}"
            )
        self.rows.append(dict(values))

    def _format(self, value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.{self.precision}f}"
        return str(value)

    def render(self) -> str:
        """The aligned text rendering (title, header, separator, rows)."""
        header = [str(c) for c in self.columns]
        body = [
            [self._format(row.get(c)) for c in self.columns] for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def column(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ConfigurationError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
