"""Economic-property audits and empirical ratio computation.

Verifies Theorems 3–8 on concrete runs: truthfulness probes, individual
rationality audits, performance/competitive ratios against the exact
solvers, and the text tables the benchmark harness prints.
"""

from repro.analysis.economics import (
    DeviationResult,
    IRViolation,
    audit_individual_rationality,
    payment_price_pairs,
    probe_truthfulness,
)
from repro.analysis.ratios import (
    RatioReport,
    msoa_performance_ratio,
    ssam_performance_ratio,
)
from repro.analysis.reporting import ResultTable
from repro.analysis.sensitivity import SensitivityResult, sweep_parameter
from repro.analysis.statistics import (
    SummaryStats,
    bootstrap_ci,
    geometric_mean,
    paired_delta,
    summarize,
)
from repro.analysis.visualize import bar_chart, series_panel, sparkline

__all__ = [
    "DeviationResult",
    "IRViolation",
    "audit_individual_rationality",
    "payment_price_pairs",
    "probe_truthfulness",
    "RatioReport",
    "msoa_performance_ratio",
    "ssam_performance_ratio",
    "ResultTable",
    "SummaryStats",
    "bootstrap_ci",
    "geometric_mean",
    "paired_delta",
    "summarize",
    "bar_chart",
    "series_panel",
    "sparkline",
    "SensitivityResult",
    "sweep_parameter",
]
