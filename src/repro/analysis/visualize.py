"""Dependency-free ASCII visualization of experiment series.

The benchmark harness prints tables; sometimes a shape is easier to eyeball
as a picture.  These helpers render series as unicode spark-lines and
simple horizontal bar charts — enough to see "who wins and where the
crossover falls" straight in a terminal, with no plotting stack.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["sparkline", "bar_chart", "series_panel"]

_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a unicode spark-line.

    Constant series render flat at the lowest tick; empty input is an
    error (there is nothing to draw).
    """
    if not values:
        raise ConfigurationError("sparkline needs at least one value")
    lo = min(values)
    hi = max(values)
    if hi - lo < 1e-12:
        return _TICKS[0] * len(values)
    scale = (len(_TICKS) - 1) / (hi - lo)
    return "".join(_TICKS[int(round((v - lo) * scale))] for v in values)


def bar_chart(
    items: Mapping[str, float],
    *,
    width: int = 40,
    precision: int = 2,
) -> str:
    """Render a label→value mapping as horizontal bars.

    Bars scale to the maximum value; labels are left-aligned, values
    printed after each bar.
    """
    if not items:
        raise ConfigurationError("bar_chart needs at least one item")
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    top = max(items.values())
    if top < 0:
        raise ConfigurationError("bar_chart needs non-negative values")
    label_width = max(len(str(label)) for label in items)
    lines = []
    for label, value in items.items():
        if value < 0:
            raise ConfigurationError(
                f"bar_chart needs non-negative values, got {label}={value}"
            )
        bar = "█" * (int(round(value / top * width)) if top > 0 else 0)
        lines.append(
            f"{str(label).ljust(label_width)}  {bar} {value:.{precision}f}"
        )
    return "\n".join(lines)


def series_panel(
    series: Mapping[str, Sequence[float]],
    *,
    x_label: str = "",
) -> str:
    """Render several aligned series as labelled spark-lines.

    All series must share a length (they sit on the same x-axis).  The
    value range is annotated per series so the compressed sparks stay
    interpretable.
    """
    if not series:
        raise ConfigurationError("series_panel needs at least one series")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ConfigurationError(
            f"all series must share a length, got lengths {sorted(lengths)}"
        )
    label_width = max(len(str(name)) for name in series)
    lines = []
    if x_label:
        lines.append(f"{' ' * label_width}  ({x_label} →)")
    for name, values in series.items():
        lines.append(
            f"{str(name).ljust(label_width)}  {sparkline(values)}  "
            f"[{min(values):.3g} .. {max(values):.3g}]"
        )
    return "\n".join(lines)
