"""Empirical performance- and competitive-ratio computation.

The figures' y-axes: the *performance ratio* of a mechanism's social cost
to the exact optimum (single round: Figure 3(a); online horizon against
the clairvoyant optimum: Figures 5(a), 6(a)).  These helpers pair a
mechanism outcome with the right exact solver and return the ratio plus
the theoretical bound for cross-checking.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.baselines.offline import run_offline_optimal
from repro.core.outcomes import AuctionOutcome, OnlineOutcome
from repro.core.wsp import WSPInstance
from repro.solvers.milp import solve_wsp_optimal

__all__ = ["RatioReport", "ssam_performance_ratio", "msoa_performance_ratio"]


@dataclass(frozen=True)
class RatioReport:
    """A measured ratio next to its theoretical ceiling."""

    mechanism_cost: float
    optimal_cost: float
    ratio: float
    theoretical_bound: float

    @property
    def within_bound(self) -> bool:
        """Whether the measurement respects the theorem (tolerance 1e-9)."""
        return self.ratio <= self.theoretical_bound + 1e-9


def _safe_ratio(cost: float, optimum: float) -> float:
    if optimum <= 0:
        return 1.0 if cost <= 0 else float("inf")
    return cost / optimum


def ssam_performance_ratio(outcome: AuctionOutcome) -> RatioReport:
    """Figure 3(a): SSAM's social cost over the exact round optimum."""
    optimum = solve_wsp_optimal(outcome.instance).objective
    return RatioReport(
        mechanism_cost=outcome.social_cost,
        optimal_cost=optimum,
        ratio=_safe_ratio(outcome.social_cost, optimum),
        theoretical_bound=outcome.ratio_bound,
    )


def msoa_performance_ratio(
    outcome: OnlineOutcome,
    rounds: Sequence[WSPInstance],
    capacities: Mapping[int, int] | None = None,
) -> RatioReport:
    """Figures 5(a)/6(a): MSOA's horizon cost over the offline optimum.

    ``rounds`` must be the instances the online mechanism actually saw (at
    announced prices); the offline solver gets the same horizon plus the
    capacity coupling.
    """
    offline = run_offline_optimal(
        rounds, capacities if capacities is not None else outcome.capacities
    )
    return RatioReport(
        mechanism_cost=outcome.social_cost,
        optimal_cost=offline.social_cost,
        ratio=_safe_ratio(outcome.social_cost, offline.social_cost),
        theoretical_bound=outcome.competitive_bound,
    )
