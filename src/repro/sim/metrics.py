"""Per-microservice performance accounting for the request simulator.

The demand-estimation model of the paper (Section III) consumes three
observable indicators per microservice and per auction round:

* the ratio of served to received requests (its "waiting time" factor),
* waiting and execution times of completed requests,
* throughput and utilization (its "request rate" factor).

:class:`MicroserviceStats` accumulates these during a round;
:class:`RoundSnapshot` is the immutable summary handed to the estimator when
the round closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["MicroserviceStats", "RoundSnapshot"]


@dataclass(frozen=True)
class RoundSnapshot:
    """Immutable per-round summary of one microservice's request handling.

    Attributes
    ----------
    microservice:
        Identifier of the microservice the snapshot describes.
    round_index:
        Zero-based auction round the measurements cover.
    received:
        Number of requests that arrived during the round (π in the paper).
    served:
        Number of requests completed during the round (θ in the paper).
    mean_waiting_time:
        Average time completed requests spent queued before service.
    mean_execution_time:
        Average service duration of completed requests.
    utilization:
        Fraction of the round during which at least one request was in
        service (the execution rate 𝕃 of Eq. 2); always in ``[0, 1]``.
    achieved_rate:
        Completed requests per unit time over the round (ς achieved).
    target_rate:
        The throughput the microservice would need to drain its arrivals
        (ϖ reference rate in the processing-time indicator).
    allocation:
        Resource units the microservice held during the round (aᵢᵗ).
    dropped:
        Requests abandoned because their start deadline expired while
        queued (0 unless the server enforces deadlines).
    """

    microservice: int
    round_index: int
    received: int
    served: int
    mean_waiting_time: float
    mean_execution_time: float
    utilization: float
    achieved_rate: float
    target_rate: float
    allocation: float
    dropped: int = 0

    @property
    def backlog(self) -> int:
        """Requests that arrived but did not complete within the round."""
        return max(0, self.received - self.served - self.dropped)

    @property
    def drop_rate(self) -> float:
        """Fraction of arrived requests dropped on deadline (0 when idle)."""
        if self.received == 0:
            return 0.0
        return self.dropped / self.received

    @property
    def completion_ratio(self) -> float:
        """θ/π — the served/received ratio used by the waiting-time factor.

        Defined as 1.0 when nothing arrived (an idle microservice is
        trivially "keeping up").
        """
        if self.received == 0:
            return 1.0
        return self.served / self.received


@dataclass
class MicroserviceStats:
    """Mutable accumulator for one microservice within one round.

    Busy time is *slot-weighted*: a server running 2 of its 4 slots for a
    second accrues 0.5 busy-seconds, so the resulting utilization is the
    average fraction of service capacity in use — the execution rate 𝕃 of
    the paper's Eq. 2 — rather than a binary any-slot-busy signal that
    saturates as soon as one request is in flight.
    """

    microservice: int
    allocation: float = 1.0
    received: int = 0
    served: int = 0
    dropped: int = 0
    total_waiting_time: float = 0.0
    total_execution_time: float = 0.0
    busy_time: float = 0.0
    _busy_since: float | None = field(default=None, repr=False)
    _busy_fraction: float = field(default=0.0, repr=False)

    def record_arrival(self) -> None:
        """Count an arriving request."""
        self.received += 1

    def record_drop(self) -> None:
        """Count a request abandoned because its deadline expired."""
        self.dropped += 1

    def record_completion(self, waiting_time: float, execution_time: float) -> None:
        """Count a completed request and its waiting/execution durations."""
        if waiting_time < 0 or execution_time < 0:
            raise SimulationError(
                "waiting/execution times must be non-negative, got "
                f"({waiting_time}, {execution_time})"
            )
        self.served += 1
        self.total_waiting_time += waiting_time
        self.total_execution_time += execution_time

    def set_busy_fraction(self, now: float, fraction: float) -> None:
        """Update the fraction of service slots in use as of ``now``.

        Accrues slot-weighted busy time for the interval since the last
        update, then records the new fraction.
        """
        if not 0.0 <= fraction <= 1.0 + 1e-9:
            raise SimulationError(
                f"busy fraction must be in [0, 1], got {fraction}"
            )
        self._accrue(now)
        self._busy_fraction = min(1.0, fraction)

    def _accrue(self, now: float) -> None:
        if self._busy_since is not None and self._busy_fraction > 0:
            self.busy_time += self._busy_fraction * (now - self._busy_since)
        self._busy_since = now

    def mark_busy(self, now: float) -> None:
        """Record that the server became fully busy at time ``now``."""
        self.set_busy_fraction(now, 1.0)

    def mark_idle(self, now: float) -> None:
        """Record that the server went idle at time ``now``."""
        self.set_busy_fraction(now, 0.0)

    def snapshot(
        self,
        round_index: int,
        round_start: float,
        round_end: float,
        arrival_rate_hint: float | None = None,
    ) -> RoundSnapshot:
        """Close the round and produce an immutable :class:`RoundSnapshot`.

        ``arrival_rate_hint`` overrides the target processing rate; when
        omitted the observed arrival rate over the round is used.
        """
        duration = round_end - round_start
        if duration <= 0:
            raise SimulationError(
                f"round must have positive duration, got [{round_start}, {round_end}]"
            )
        busy = self.busy_time
        if self._busy_since is not None and self._busy_fraction > 0:
            busy += self._busy_fraction * (round_end - self._busy_since)
        utilization = min(1.0, busy / duration)
        achieved_rate = self.served / duration
        target_rate = (
            arrival_rate_hint if arrival_rate_hint is not None else self.received / duration
        )
        return RoundSnapshot(
            microservice=self.microservice,
            round_index=round_index,
            received=self.received,
            served=self.served,
            mean_waiting_time=(
                self.total_waiting_time / self.served if self.served else 0.0
            ),
            mean_execution_time=(
                self.total_execution_time / self.served if self.served else 0.0
            ),
            utilization=utilization,
            achieved_rate=achieved_rate,
            target_rate=target_rate,
            allocation=self.allocation,
            dropped=self.dropped,
        )

    def reset(self, now: float) -> None:
        """Clear counters for the next round, preserving busy state."""
        still_busy = self._busy_fraction > 0
        self.received = 0
        self.served = 0
        self.dropped = 0
        self.total_waiting_time = 0.0
        self.total_execution_time = 0.0
        self.busy_time = 0.0
        self._busy_since = now if still_busy else None
