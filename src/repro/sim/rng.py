"""Seeded random-number-stream management.

Every stochastic component in the library draws from an explicit
:class:`numpy.random.Generator` rather than the global NumPy state, so that
experiments are reproducible and independent subsystems (workload arrivals,
bid prices, service times, ...) can be given *independent* streams derived
from a single master seed.

:class:`RngRegistry` implements the common "one master seed, many named
substreams" pattern via :class:`numpy.random.SeedSequence` spawning, which
guarantees statistical independence between substreams.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RngRegistry", "make_rng", "spawn_rngs"]


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an integer seed, an existing generator (returned unchanged, so
    call sites can uniformly write ``rng = make_rng(seed_or_rng)``), or
    ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from ``seed``."""
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


class RngRegistry:
    """A registry of named, independent random streams under one master seed.

    Example
    -------
    >>> registry = RngRegistry(seed=42)
    >>> arrivals = registry.stream("arrivals")
    >>> prices = registry.stream("prices")
    >>> arrivals is registry.stream("arrivals")  # streams are cached
    True

    Two registries created with the same seed produce identical streams for
    identical names, regardless of the order in which the streams are first
    requested.  This is what makes sweep experiments reproducible even when
    code paths request streams lazily.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int | None:
        """The master seed this registry derives every stream from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The stream for a given ``(seed, name)`` pair is always the same
        sequence: the name is hashed into the seed material via
        :class:`numpy.random.SeedSequence` ``spawn_key`` semantics.
        """
        if not name:
            raise ConfigurationError("stream name must be a non-empty string")
        if name not in self._streams:
            digest = _stable_name_digest(name)
            sequence = np.random.SeedSequence(
                entropy=self._seed if self._seed is not None else 0,
                spawn_key=(digest,),
            )
            self._streams[name] = np.random.default_rng(sequence)
        return self._streams[name]

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed!r}, streams={sorted(self._streams)})"


def _stable_name_digest(name: str) -> int:
    """Hash a stream name into a stable 63-bit integer.

    Python's builtin ``hash`` is salted per-process, so it cannot be used for
    reproducibility across runs; a simple FNV-1a over the UTF-8 bytes is
    stable, fast, and good enough to separate stream names.
    """
    digest = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        digest ^= byte
        digest = (digest * 0x100000001B3) % (1 << 64)
    return digest >> 1
