"""Event primitives for the discrete-event simulation engine.

The simulator is a classic event-queue design: a time-ordered heap of
:class:`Event` records, each carrying a kind, a timestamp, and an arbitrary
payload.  Ties in time are broken by a monotonically increasing sequence
number so that event ordering is fully deterministic — a requirement for
reproducible experiments.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.Enum):
    """The kinds of events the edge-cloud request simulator understands."""

    ARRIVAL = "arrival"
    """A user request arrives at a microservice's queue."""

    SERVICE_START = "service_start"
    """A queued request begins execution on allocated resources."""

    DEPARTURE = "departure"
    """A request finishes execution and leaves the system."""

    ROUND_BOUNDARY = "round_boundary"
    """An auction-round boundary: metrics are snapshotted and reset."""

    CUSTOM = "custom"
    """A user-defined event processed by a registered handler."""


@dataclass(frozen=True, order=True)
class Event:
    """A single simulation event.

    Events are totally ordered by ``(time, sequence)``; ``kind`` and
    ``payload`` are excluded from the comparison so heterogeneous payloads
    never break heap ordering.
    """

    time: float
    sequence: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SimulationError(f"event time must be non-negative, got {self.time}")


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    The queue assigns sequence numbers itself, so callers only provide the
    time, kind, and payload.  Popping from an empty queue raises
    :class:`~repro.errors.SimulationError` rather than returning a sentinel,
    because an empty queue mid-simulation indicates a scheduling bug.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event and return the stored record."""
        event = Event(time=time, sequence=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("cannot pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return the earliest event without removing it."""
        if not self._heap:
            raise SimulationError("cannot peek into an empty event queue")
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def clear(self) -> None:
        """Drop all pending events (used between independent runs)."""
        self._heap.clear()
