"""Discrete-event simulation substrate.

This subpackage provides the request-level simulator that drives the
paper's Section-III demand estimation: a deterministic event-queue kernel
(:mod:`repro.sim.engine`), request arrival/service processes
(:mod:`repro.sim.processes`), per-round statistics
(:mod:`repro.sim.metrics`), and seeded randomness utilities
(:mod:`repro.sim.rng`).
"""

from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.metrics import MicroserviceStats, RoundSnapshot
from repro.sim.processes import ArrivalProcess, Request, RequestServer
from repro.sim.rng import RngRegistry, make_rng, spawn_rngs

__all__ = [
    "SimulationEngine",
    "Event",
    "EventKind",
    "EventQueue",
    "MicroserviceStats",
    "RoundSnapshot",
    "ArrivalProcess",
    "Request",
    "RequestServer",
    "RngRegistry",
    "make_rng",
    "spawn_rngs",
]
