"""Request arrival and service processes built on the DES kernel.

These processes model each microservice as a FIFO multi-slot server: the
number of concurrent service slots equals its (integer part of) resource
allocation, and the mean service time shrinks proportionally as allocation
grows.  This captures the paper's premise that an under-allocated
microservice accumulates queueing delay — exactly the signal the
Section-III demand estimator keys on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventKind
from repro.sim.metrics import MicroserviceStats

__all__ = ["Request", "ArrivalProcess", "RequestServer"]


@dataclass(frozen=True)
class Request:
    """A single user request flowing through a microservice.

    ``work`` is the request's intrinsic service requirement in work units;
    the actual execution time is ``work / speed`` where speed derives from
    the microservice's current resource allocation.  ``deadline`` (absolute
    time, optional) is the latest moment service may *start*: a
    deadline-enforcing server drops the request once it expires in queue,
    modelling delay-sensitive traffic that is worthless when stale.
    """

    request_id: int
    microservice: int
    user: int
    arrival_time: float
    work: float
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise SimulationError(f"request work must be positive, got {self.work}")
        if self.deadline is not None and self.deadline < self.arrival_time:
            raise SimulationError(
                f"deadline {self.deadline} precedes arrival {self.arrival_time}"
            )


class ArrivalProcess:
    """A Poisson (or general renewal) arrival process for one microservice.

    The process schedules its own next arrival each time it fires, and stops
    scheduling once ``horizon`` is reached.  Inter-arrival times come from
    ``interarrival_sampler`` so deterministic and bursty processes plug in
    without subclassing.
    """

    def __init__(
        self,
        microservice: int,
        rate: float,
        horizon: float,
        rng: np.random.Generator,
        work_mean: float = 1.0,
        user_pool: int = 1,
        relative_deadline: float | None = None,
    ) -> None:
        if rate <= 0:
            raise SimulationError(f"arrival rate must be positive, got {rate}")
        if work_mean <= 0:
            raise SimulationError(f"work_mean must be positive, got {work_mean}")
        if relative_deadline is not None and relative_deadline <= 0:
            raise SimulationError(
                f"relative_deadline must be positive, got {relative_deadline}"
            )
        self.microservice = microservice
        self.rate = rate
        self.horizon = horizon
        self.work_mean = work_mean
        self.user_pool = max(1, user_pool)
        self.relative_deadline = relative_deadline
        self._rng = rng
        self._ids = itertools.count()

    def start(self, engine: SimulationEngine) -> None:
        """Schedule the first arrival on ``engine``."""
        self._schedule_next(engine, engine.now)

    def _schedule_next(self, engine: SimulationEngine, now: float) -> None:
        gap = float(self._rng.exponential(1.0 / self.rate))
        when = now + gap
        if when >= self.horizon:
            return
        request = Request(
            request_id=next(self._ids),
            microservice=self.microservice,
            user=int(self._rng.integers(0, self.user_pool)),
            arrival_time=when,
            work=float(self._rng.exponential(self.work_mean)),
            deadline=(
                when + self.relative_deadline
                if self.relative_deadline is not None
                else None
            ),
        )
        engine.schedule(when, EventKind.ARRIVAL, request)

    def on_arrival(self, engine: SimulationEngine, event: Event) -> None:
        """Handler hook: reschedule the next arrival of this process."""
        request = event.payload
        if isinstance(request, Request) and request.microservice == self.microservice:
            self._schedule_next(engine, event.time)


@dataclass
class _InService:
    request: Request
    started_at: float


class RequestServer:
    """FIFO multi-slot server for one microservice.

    ``allocation`` controls both concurrency (``floor(allocation)`` slots,
    at least one) and per-slot speed (``speed_per_unit * allocation /
    slots``), so the total service capacity scales linearly with allocated
    resources.  Statistics are accumulated into a
    :class:`~repro.sim.metrics.MicroserviceStats`.
    """

    def __init__(
        self,
        microservice: int,
        allocation: float,
        speed_per_unit: float = 1.0,
        discipline: str = "fifo",
    ) -> None:
        if allocation <= 0:
            raise SimulationError(f"allocation must be positive, got {allocation}")
        if speed_per_unit <= 0:
            raise SimulationError(f"speed_per_unit must be positive, got {speed_per_unit}")
        if discipline not in ("fifo", "edf"):
            raise SimulationError(
                f"discipline must be 'fifo' or 'edf', got {discipline!r}"
            )
        self.microservice = microservice
        self.speed_per_unit = speed_per_unit
        self.discipline = discipline
        self.stats = MicroserviceStats(microservice=microservice, allocation=allocation)
        self._allocation = allocation
        self._waiting: list[Request] = []
        self._in_service: dict[int, _InService] = {}

    @property
    def allocation(self) -> float:
        """Resource units currently allocated to this microservice."""
        return self._allocation

    @property
    def slots(self) -> int:
        """Number of parallel service slots (≥ 1)."""
        return max(1, int(self._allocation))

    @property
    def speed(self) -> float:
        """Work units per time unit that each busy slot processes."""
        return self.speed_per_unit * self._allocation / self.slots

    @property
    def queue_length(self) -> int:
        """Requests waiting (not yet in service)."""
        return len(self._waiting)

    @property
    def busy_slots(self) -> int:
        """Requests currently in service."""
        return len(self._in_service)

    def set_allocation(self, allocation: float, now: float) -> None:
        """Re-allocate resources (takes effect for future service starts)."""
        if allocation <= 0:
            raise SimulationError(f"allocation must be positive, got {allocation}")
        self._allocation = allocation
        self.stats.allocation = allocation
        del now  # reallocation is instantaneous in this model

    def handle_arrival(self, engine: SimulationEngine, event: Event) -> None:
        """ARRIVAL handler: enqueue the request and try to start service."""
        request = event.payload
        if not isinstance(request, Request) or request.microservice != self.microservice:
            return
        self.stats.record_arrival()
        self._waiting.append(request)
        self._try_start(engine)

    def handle_departure(self, engine: SimulationEngine, event: Event) -> None:
        """DEPARTURE handler: complete the request and pull the next one."""
        payload = event.payload
        if not isinstance(payload, tuple) or len(payload) != 2:
            return
        microservice, request_id = payload
        if microservice != self.microservice:
            return
        record = self._in_service.pop(request_id, None)
        if record is None:
            raise SimulationError(
                f"departure for unknown request {request_id} at microservice "
                f"{self.microservice}"
            )
        waiting = record.started_at - record.request.arrival_time
        execution = event.time - record.started_at
        self.stats.record_completion(waiting_time=waiting, execution_time=execution)
        self._sync_busy_fraction(event.time)
        self._try_start(engine)

    def _sync_busy_fraction(self, now: float) -> None:
        """Record the current fraction of busy slots (slot-weighted 𝕃)."""
        self.stats.set_busy_fraction(now, len(self._in_service) / self.slots)

    def _next_request(self) -> Request:
        """Dequeue per discipline: FIFO order or earliest deadline first."""
        if self.discipline == "edf":
            import math

            position = min(
                range(len(self._waiting)),
                key=lambda i: (
                    self._waiting[i].deadline
                    if self._waiting[i].deadline is not None
                    else math.inf,
                    i,
                ),
            )
            return self._waiting.pop(position)
        return self._waiting.pop(0)

    def _try_start(self, engine: SimulationEngine) -> None:
        while self._waiting and len(self._in_service) < self.slots:
            request = self._next_request()
            now = engine.now
            if request.deadline is not None and now > request.deadline:
                # Stale in queue: the client gave up; count and move on.
                self.stats.record_drop()
                continue
            self._in_service[request.request_id] = _InService(request, started_at=now)
            self._sync_busy_fraction(now)
            duration = request.work / self.speed
            engine.schedule_after(
                duration, EventKind.DEPARTURE, (self.microservice, request.request_id)
            )
