"""The discrete-event simulation engine.

A deliberately small, dependency-free DES kernel: a clock, an event queue,
and a dispatch table mapping :class:`~repro.sim.events.EventKind` to handler
callables.  Handlers receive the engine itself plus the event, and may
schedule further events.  The engine enforces the fundamental DES invariant
that time never moves backwards.

The request-processing processes built on top of this kernel live in
:mod:`repro.sim.processes`.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventKind, EventQueue

__all__ = ["SimulationEngine"]

Handler = Callable[["SimulationEngine", Event], None]


class SimulationEngine:
    """A minimal deterministic discrete-event simulation kernel.

    Example
    -------
    >>> engine = SimulationEngine()
    >>> seen = []
    >>> engine.register(EventKind.CUSTOM, lambda eng, ev: seen.append(ev.payload))
    >>> _ = engine.schedule(1.5, EventKind.CUSTOM, "hello")
    >>> engine.run_until(10.0)
    >>> seen
    ['hello']
    >>> engine.now
    10.0
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._handlers: dict[EventKind, list[Handler]] = {kind: [] for kind in EventKind}
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """The current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """How many events have been dispatched so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """How many events are still scheduled."""
        return len(self._queue)

    def register(self, kind: EventKind, handler: Handler) -> None:
        """Attach ``handler`` to every future event of ``kind``.

        Multiple handlers for one kind run in registration order.
        """
        self._handlers[kind].append(handler)

    def schedule(self, time: float, kind: EventKind, payload: object = None) -> Event:
        """Schedule an event at absolute ``time`` (must not be in the past)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        return self._queue.push(time, kind, payload)

    def schedule_after(self, delay: float, kind: EventKind, payload: object = None) -> Event:
        """Schedule an event ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self._now + delay, kind, payload)

    def step(self) -> Event:
        """Dispatch the single earliest pending event and return it."""
        event = self._queue.pop()
        self._now = event.time
        self._processed += 1
        for handler in self._handlers[event.kind]:
            handler(self, event)
        return event

    def run_until(self, horizon: float) -> None:
        """Process events in time order until ``horizon``.

        Events scheduled exactly at the horizon are *not* processed (the
        horizon is exclusive), which makes back-to-back calls with touching
        horizons process each event exactly once.  The clock is advanced to
        the horizon on return even if the queue drains early.
        """
        if horizon < self._now:
            raise SimulationError(
                f"horizon {horizon} is before current time {self._now}"
            )
        while self._queue and self._queue.peek().time < horizon:
            self.step()
        self._now = horizon

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Drain the queue completely, bounded by ``max_events`` as a guard.

        The bound exists because processes that endlessly reschedule
        themselves (e.g. an arrival process with no horizon) would otherwise
        hang; hitting it raises :class:`~repro.errors.SimulationError`.
        """
        count = 0
        while self._queue:
            self.step()
            count += 1
            if count >= max_events:
                raise SimulationError(
                    f"run_all exceeded {max_events} events; "
                    "did a process forget its horizon?"
                )

    def reset(self) -> None:
        """Clear time, counters, and any pending events; keep handlers."""
        self._queue.clear()
        self._now = 0.0
        self._processed = 0
