"""Microservice demand estimation (Section III of the paper).

Combines three observable indicators — queueing backlog, processing-rate
deficit, and load intensity — into per-round integer demand units, with
indicator weights derived by the Analytic Hierarchy Process.
"""

from repro.demand.ahp import (
    RANDOM_INDEX,
    AHPResult,
    ahp_weights,
    pairwise_matrix_from_judgments,
)
from repro.demand.estimator import DemandEstimator, DemandWeights, NoisyOracleEstimator
from repro.demand.indicators import (
    ProcessingRateIndicator,
    RequestRateIndicator,
    WaitingTimeIndicator,
)

__all__ = [
    "RANDOM_INDEX",
    "AHPResult",
    "ahp_weights",
    "pairwise_matrix_from_judgments",
    "DemandEstimator",
    "DemandWeights",
    "NoisyOracleEstimator",
    "ProcessingRateIndicator",
    "RequestRateIndicator",
    "WaitingTimeIndicator",
]
