"""The microservice demand estimator (Section III, Eq. 1).

``Xᵢᵗ = (1/w_γ)·γᵢᵗ + (1/w_ℝ)·ℝᵢᵗ + (1/w_𝕋)·𝕋ᵢᵗ`` — a weighted blend of the
three indicators, with weights chosen by AHP over the operator's judgment
of the indicators' relative importance.  The estimator consumes the
simulator's per-round :class:`~repro.sim.metrics.RoundSnapshot` objects and
emits integer *demand units* suitable for the auction (the paper's
coverage requirements are integral).

Also provided is :class:`NoisyOracleEstimator`, which perturbs a known
true demand — the experiment harness uses it to separate "plain MSOA with
imperfect estimates" from the MSOA-DA variant that gets oracle demand.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.demand.ahp import AHPResult, ahp_weights, pairwise_matrix_from_judgments
from repro.demand.indicators import (
    ProcessingRateIndicator,
    RequestRateIndicator,
    WaitingTimeIndicator,
)
from repro.errors import ConfigurationError
from repro.sim.metrics import RoundSnapshot

__all__ = ["DemandWeights", "DemandEstimator", "NoisyOracleEstimator"]


@dataclass(frozen=True)
class DemandWeights:
    """The ``1/w`` scaling factors of Eq. 1, one per indicator.

    The constructor accepts raw (unnormalized) importance weights; the
    paper's AHP route is available via :meth:`from_ahp_judgments`.
    """

    waiting: float = 1.0
    processing: float = 1.0
    request_rate: float = 1.0

    def __post_init__(self) -> None:
        for name, value in (
            ("waiting", self.waiting),
            ("processing", self.processing),
            ("request_rate", self.request_rate),
        ):
            if value < 0:
                raise ConfigurationError(f"weight {name} must be non-negative, got {value}")
        if self.waiting == self.processing == self.request_rate == 0:
            raise ConfigurationError("at least one demand weight must be positive")

    @staticmethod
    def from_ahp_judgments(
        waiting_vs_processing: float = 2.0,
        waiting_vs_request: float = 1.0,
        processing_vs_request: float = 0.5,
    ) -> tuple["DemandWeights", AHPResult]:
        """Derive weights from Saaty-scale pairwise judgments (ref [18]).

        The defaults encode the paper's implicit ordering — queueing delay
        and request rate dominate the (already time-averaged) processing
        gap — and yield a consistency ratio well under 0.1.
        """
        matrix = pairwise_matrix_from_judgments(
            {
                (0, 1): waiting_vs_processing,
                (0, 2): waiting_vs_request,
                (1, 2): processing_vs_request,
            },
            n=3,
        )
        result = ahp_weights(matrix)
        weights = DemandWeights(
            waiting=float(result.weights[0]),
            processing=float(result.weights[1]),
            request_rate=float(result.weights[2]),
        )
        return weights, result


@dataclass
class DemandEstimator:
    """Eq. 1's estimator over simulator snapshots.

    Parameters
    ----------
    weights:
        The indicator blend (``1/w`` factors).
    waiting / processing / request_rate:
        The three indicator functions; defaults use unit coefficients.
    unit_size:
        How much blended demand constitutes one auction *coverage unit*;
        estimates are divided by this and rounded up.
    max_units:
        Cap on a single microservice's demand units per round, preventing
        a saturated estimate (𝕋's ``1/(1−𝕃)`` blow-up) from requesting
        more than any market could supply.
    """

    weights: DemandWeights = field(default_factory=DemandWeights)
    waiting: WaitingTimeIndicator = field(default_factory=WaitingTimeIndicator)
    processing: ProcessingRateIndicator = field(default_factory=ProcessingRateIndicator)
    request_rate: RequestRateIndicator = field(default_factory=RequestRateIndicator)
    unit_size: float = 1.0
    max_units: int = 10

    def __post_init__(self) -> None:
        if self.unit_size <= 0:
            raise ConfigurationError(f"unit_size must be positive, got {self.unit_size}")
        if self.max_units <= 0:
            raise ConfigurationError(f"max_units must be positive, got {self.max_units}")

    def blended(self, snapshot: RoundSnapshot, a_max: float) -> float:
        """The raw Eq.-1 blend ``Xᵢᵗ`` (continuous, non-negative)."""
        return (
            self.weights.waiting * self.waiting(snapshot)
            + self.weights.processing * self.processing(snapshot)
            + self.weights.request_rate * self.request_rate(snapshot, a_max)
        )

    def estimate_units(self, snapshot: RoundSnapshot, a_max: float) -> int:
        """Integer demand units for the auction.

        Rounds the blend to the nearest whole unit, so a weak signal
        (below half a unit) registers no demand — otherwise every lightly
        loaded microservice would enter the auction as a buyer and the
        market would have no sellers left.
        """
        blend = self.blended(snapshot, a_max)
        units = int(math.floor(blend / self.unit_size + 0.5))
        if units <= 0:
            return 0
        return min(self.max_units, units)

    def estimate_round(
        self, snapshots: Iterable[RoundSnapshot]
    ) -> dict[int, int]:
        """Demand units for every microservice in a round's snapshots.

        ``a_max`` is taken as the largest allocation among the snapshots
        (the paper's ``a_max = max aᵢᵗ``); microservices whose estimate is
        zero are omitted from the result.
        """
        snapshots = list(snapshots)
        if not snapshots:
            return {}
        a_max = max(s.allocation for s in snapshots)
        if a_max <= 0:
            raise ConfigurationError("snapshots must carry positive allocations")
        demands: dict[int, int] = {}
        for snapshot in snapshots:
            units = self.estimate_units(snapshot, a_max)
            if units > 0:
                demands[snapshot.microservice] = units
        return demands


@dataclass
class NoisyOracleEstimator:
    """A demand estimator that perturbs a known true demand.

    Models estimation error abstractly: each microservice's true demand is
    multiplied by a lognormal factor with the given ``sigma`` and rounded.
    ``sigma = 0`` reproduces the oracle exactly (the MSOA-DA setting);
    larger sigmas model the imperfect Section-III pipeline under bursty
    load.  Estimates never drop a positive true demand to zero — the buyer
    still shows up, just with a possibly wrong size — and are capped at
    ``max_units``.

    With ``conservative=True`` the estimate never falls below the true
    demand — the estimator over-provisions rather than risk starving a
    microservice, which is how the Section-III indicators behave near
    saturation (the 1/(1−𝕃) factor diverges).  The experiment harness uses
    this mode so that plain MSOA's handicap relative to MSOA-DA is paying
    for *excess* coverage, exactly the paper's "accurate estimation →
    lower social cost" story.
    """

    rng: np.random.Generator
    sigma: float = 0.25
    max_units: int = 10
    conservative: bool = True
    max_overshoot: int = 2

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {self.sigma}")
        if self.max_units <= 0:
            raise ConfigurationError(f"max_units must be positive, got {self.max_units}")
        if self.max_overshoot < 0:
            raise ConfigurationError(
                f"max_overshoot must be non-negative, got {self.max_overshoot}"
            )

    def estimate(self, true_demand: Mapping[int, int]) -> dict[int, int]:
        """Perturbed integer demand per buyer.

        The error is bounded: estimates never exceed the true demand by
        more than ``max_overshoot`` units.  An unbounded over-estimator
        would routinely demand more units than any market could supply,
        turning every experiment into a feasibility-repair exercise
        instead of a pricing comparison.
        """
        estimated: dict[int, int] = {}
        for buyer, units in true_demand.items():
            if units <= 0:
                continue
            if self.sigma == 0:
                estimated[buyer] = min(units, self.max_units)
                continue
            factor = float(self.rng.lognormal(mean=0.0, sigma=self.sigma))
            noisy = max(1, int(round(units * factor)))
            if self.conservative:
                noisy = max(noisy, units)
            noisy = min(noisy, units + self.max_overshoot)
            estimated[buyer] = min(noisy, self.max_units)
        return estimated
