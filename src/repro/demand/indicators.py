"""The three demand indicators of Section III.

Each indicator maps a per-round :class:`~repro.sim.metrics.RoundSnapshot`
to a non-negative demand contribution:

* **Waiting time** (γᵗᵢ = ζ·θᵢ/πᵢ): built from the served/received ratio.
  The paper's narrative is "the smaller the waiting time, the larger the
  demand" *decreases as waiting grows*; the θ/π completion ratio is their
  chosen observable — a microservice serving all arrivals promptly has
  θ/π ≈ 1, while an overloaded one falls behind.  We implement the
  indicator as ``ζ·(1 − θ/π)`` scaled — i.e. demand grows with the *unmet*
  fraction — which is the only reading under which both of the paper's
  monotonicity statements ("demand decreases as waiting time increases"
  is a typo mirror of "higher backlog → higher demand") and the reward
  fairness discussion stay coherent.  The verbatim ``ζ·θ/π`` form is
  available via ``literal=True`` for side-by-side comparison.
* **Processing rate** (ℝᵗᵢ = (ς − ϖ)/t): the time-averaged gap between the
  rate the microservice *needs* (its arrival/target rate ς) and the rate
  it *achieves* (ϖ); positive gap means it is falling behind and needs
  resources.
* **Request rate** (𝕋ᵗᵢ, Eq. 2): grows with the microservice's relative
  allocation share, its execution rate 𝕃 (utilization), and diverges as
  𝕃 → 1 — the classic queueing-delay blow-up near saturation.  We clamp
  𝕃 at a configurable maximum to keep the estimate finite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.metrics import RoundSnapshot

__all__ = [
    "WaitingTimeIndicator",
    "ProcessingRateIndicator",
    "RequestRateIndicator",
]


@dataclass(frozen=True)
class WaitingTimeIndicator:
    """γᵗᵢ — demand contribution from queueing backlog.

    Parameters
    ----------
    zeta:
        The paper's ζ scale coefficient.
    literal:
        When True, computes the verbatim ``ζ·θ/π`` (demand *rewards*
        microservices that keep up); the default computes ``ζ·(1 − θ/π)``
        (demand tracks the unserved fraction).  See the module docstring.
    """

    zeta: float = 1.0
    literal: bool = False

    def __post_init__(self) -> None:
        if self.zeta < 0:
            raise ConfigurationError(f"zeta must be non-negative, got {self.zeta}")

    def __call__(self, snapshot: RoundSnapshot) -> float:
        ratio = snapshot.completion_ratio
        if self.literal:
            return self.zeta * ratio
        return self.zeta * max(0.0, 1.0 - ratio)


@dataclass(frozen=True)
class ProcessingRateIndicator:
    """ℝᵗᵢ — demand contribution from the processing-rate deficit.

    ``(ς − ϖ)/t`` with ς the rate the microservice must sustain (its
    target/arrival rate) and ϖ the rate it achieved; the division by the
    round index ``t`` (1-based) is the paper's long-term time-averaging
    relaxation.  Negative gaps (over-provisioned service) clamp to zero.
    """

    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale < 0:
            raise ConfigurationError(f"scale must be non-negative, got {self.scale}")

    def __call__(self, snapshot: RoundSnapshot) -> float:
        gap = snapshot.target_rate - snapshot.achieved_rate
        rounds_elapsed = snapshot.round_index + 1
        return self.scale * max(0.0, gap) / rounds_elapsed


@dataclass(frozen=True)
class RequestRateIndicator:
    """𝕋ᵗᵢ — demand contribution from load intensity (Eq. 2).

    ``Δ · (aᵢᵗ/a_max) · (𝕃ᵢᵗ·t / V(n̄)) · 1/(1 − 𝕃ᵢᵗ)`` where 𝕃 is the
    utilization, ``a`` the current allocation, and ``V(n̄)`` the density of
    neighbouring served microservices.  Utilization is clamped to
    ``max_utilization`` to keep the ``1/(1−𝕃)`` factor finite near
    saturation.
    """

    delta: float = 1.0
    neighbour_density: float = 1.0
    max_utilization: float = 0.95

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise ConfigurationError(f"delta must be non-negative, got {self.delta}")
        if self.neighbour_density <= 0:
            raise ConfigurationError(
                f"neighbour_density must be positive, got {self.neighbour_density}"
            )
        if not 0.0 < self.max_utilization < 1.0:
            raise ConfigurationError(
                f"max_utilization must be in (0, 1), got {self.max_utilization}"
            )

    def __call__(self, snapshot: RoundSnapshot, a_max: float) -> float:
        if a_max <= 0:
            raise ConfigurationError(f"a_max must be positive, got {a_max}")
        utilization = min(snapshot.utilization, self.max_utilization)
        rounds_elapsed = snapshot.round_index + 1
        share = snapshot.allocation / a_max
        load = utilization * rounds_elapsed / self.neighbour_density
        congestion = 1.0 / (1.0 - utilization)
        return self.delta * share * load * congestion
