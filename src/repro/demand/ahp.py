"""The Analytic Hierarchy Process (Saaty 1987), used for indicator weights.

The paper fixes the scaling factors ``1/w_γ``, ``1/w_ℝ``, ``1/w_𝕋`` of its
demand model "by the analytical hierarchy process (AHP)" (ref [18]).  AHP
derives a weight vector from a *pairwise comparison matrix* ``A`` where
``A[i, j]`` states how much more important criterion ``i`` is than ``j``
on Saaty's 1–9 scale.  The weights are the principal right eigenvector of
``A``; the *consistency ratio* (CR) measures how close the judgments are
to perfectly transitive (a CR below 0.1 is conventionally acceptable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["AHPResult", "ahp_weights", "pairwise_matrix_from_judgments", "RANDOM_INDEX"]

#: Saaty's random consistency index by matrix size (n = 1..10).
RANDOM_INDEX = {
    1: 0.0,
    2: 0.0,
    3: 0.58,
    4: 0.90,
    5: 1.12,
    6: 1.24,
    7: 1.32,
    8: 1.41,
    9: 1.45,
    10: 1.49,
}


@dataclass(frozen=True)
class AHPResult:
    """Weights plus consistency diagnostics from one AHP evaluation.

    Attributes
    ----------
    weights:
        The normalized priority vector (sums to 1, all positive).
    lambda_max:
        The principal eigenvalue of the comparison matrix.
    consistency_index:
        ``CI = (λ_max − n)/(n − 1)``.
    consistency_ratio:
        ``CR = CI / RI(n)``; values below 0.1 indicate acceptable
        judgment consistency (for ``n ≤ 2`` it is identically 0).
    """

    weights: np.ndarray
    lambda_max: float
    consistency_index: float
    consistency_ratio: float

    @property
    def is_consistent(self) -> bool:
        """Saaty's conventional CR < 0.1 acceptance test."""
        return self.consistency_ratio < 0.1


def pairwise_matrix_from_judgments(judgments: dict[tuple[int, int], float], n: int) -> np.ndarray:
    """Build a reciprocal comparison matrix from upper-triangle judgments.

    ``judgments[(i, j)]`` (for ``i < j``) is criterion ``i``'s importance
    over ``j``; the diagonal is 1 and the lower triangle the reciprocal.
    Missing pairs default to 1 (equal importance).
    """
    if n <= 0:
        raise ConfigurationError(f"matrix size must be positive, got {n}")
    matrix = np.ones((n, n))
    for (i, j), value in judgments.items():
        if not (0 <= i < n and 0 <= j < n) or i == j:
            raise ConfigurationError(f"invalid judgment pair ({i}, {j}) for n={n}")
        if value <= 0:
            raise ConfigurationError(
                f"judgment ({i}, {j}) must be positive, got {value}"
            )
        matrix[i, j] = value
        matrix[j, i] = 1.0 / value
    return matrix


def ahp_weights(matrix: np.ndarray) -> AHPResult:
    """Compute AHP priority weights from a pairwise comparison matrix.

    The matrix must be square, positive, and reciprocal
    (``A[j, i] == 1/A[i, j]`` within tolerance).  Weights come from the
    principal eigenvector (power iteration is unnecessary; we use
    :func:`numpy.linalg.eig` and take the eigenvector of the largest real
    eigenvalue).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ConfigurationError(f"comparison matrix must be square, got {matrix.shape}")
    n = matrix.shape[0]
    if np.any(matrix <= 0):
        raise ConfigurationError("comparison matrix entries must be positive")
    if not np.allclose(matrix * matrix.T, np.ones((n, n)), rtol=1e-6):
        raise ConfigurationError("comparison matrix must be reciprocal (A[j,i] = 1/A[i,j])")
    eigenvalues, eigenvectors = np.linalg.eig(matrix)
    principal = int(np.argmax(eigenvalues.real))
    lambda_max = float(eigenvalues[principal].real)
    vector = np.abs(eigenvectors[:, principal].real)
    weights = vector / vector.sum()
    ci = (lambda_max - n) / (n - 1) if n > 1 else 0.0
    ri = RANDOM_INDEX.get(n, 1.49)
    cr = 0.0 if ri == 0.0 else ci / ri
    return AHPResult(
        weights=weights,
        lambda_max=lambda_max,
        consistency_index=float(ci),
        consistency_ratio=float(cr),
    )
