"""Named parameter presets from the paper's evaluation (Section V.A).

"We consider 300 edge users and 10 macro base stations each co-located
with a computing server. We randomly deploy 25–75 microservices on
different edge clouds. ... The default value for T, S, J, and ℒ is 10,
25, 2, and 10, respectively."

:data:`PAPER_DEFAULTS` captures those defaults; sweep helpers enumerate
the figure axes (microservice counts 25–75, rounds 1–15, bids per user
1–4, requests 100/200).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.workload.bidgen import MarketConfig

__all__ = [
    "PaperScenario",
    "PAPER_DEFAULTS",
    "microservice_sweep",
    "rounds_sweep",
    "bids_sweep",
]


@dataclass(frozen=True)
class PaperScenario:
    """The full Section-V.A parameterization of one experiment run.

    ``n_requests`` is the user-request volume the figures toggle between
    100 and 200; it scales the number of needy microservices (buyers) and
    their demand intensity in the synthetic market.
    """

    n_users: int = 300
    n_base_stations: int = 10
    n_microservices: int = 25
    rounds: int = 10
    bids_per_seller: int = 2
    n_requests: int = 100
    round_length_minutes: float = 10.0
    price_range: tuple[float, float] = (10.0, 35.0)
    capacity_range: tuple[int, int] = (10, 40)

    def __post_init__(self) -> None:
        if self.n_microservices < 2:
            raise ConfigurationError("need at least 2 microservices")
        if self.rounds <= 0:
            raise ConfigurationError("rounds must be positive")
        if self.n_requests <= 0:
            raise ConfigurationError("n_requests must be positive")

    def market_config(self) -> MarketConfig:
        """Translate the scenario into a synthetic-market configuration.

        The needy subset Ŝ grows with the request volume: with the paper's
        100-request baseline roughly a fifth of the microservices need
        extra resources, doubling the requests doubles both the needy
        share (capped at half the fleet) and the per-buyer demand spread.
        """
        needy_fraction = min(0.5, 0.2 * self.n_requests / 100.0)
        n_buyers = max(2, int(round(self.n_microservices * needy_fraction)))
        n_sellers = max(2, self.n_microservices - n_buyers)
        max_demand = 2 if self.n_requests <= 100 else 4
        max_demand = min(max_demand, n_sellers)
        return MarketConfig(
            n_sellers=n_sellers,
            n_buyers=n_buyers,
            bids_per_seller=self.bids_per_seller,
            price_range=self.price_range,
            demand_units_range=(1, max_demand),
            coverage_range=(1, min(3, n_buyers)),
        )


PAPER_DEFAULTS = PaperScenario()
"""T=10 rounds, S=25 microservices, J=2 bids, 10 edge clouds, 300 users."""


def microservice_sweep(
    base: PaperScenario = PAPER_DEFAULTS,
    counts: tuple[int, ...] = (25, 35, 45, 55, 65, 75),
) -> list[PaperScenario]:
    """The figure-3a/3b/5a/6b x-axis: 25–75 microservices."""
    return [replace(base, n_microservices=c) for c in counts]


def rounds_sweep(
    base: PaperScenario = PAPER_DEFAULTS,
    counts: tuple[int, ...] = (1, 3, 5, 7, 9, 11, 13, 15),
) -> list[PaperScenario]:
    """The figure-6a x-axis: rounds T from 1 to 15."""
    return [replace(base, rounds=c) for c in counts]


def bids_sweep(
    base: PaperScenario = PAPER_DEFAULTS,
    counts: tuple[int, ...] = (1, 2, 3, 4),
) -> list[PaperScenario]:
    """The figure-6a series: bids per user J."""
    return [replace(base, bids_per_seller=c) for c in counts]
