"""Synthetic "real-world-like" demand traces.

The paper evaluates "with real-world data traces and parameter settings"
but publishes only the Poisson parameterization (Section V.A).  As the
proprietary traces are unavailable, this module generates the standard
synthetic stand-in used across the edge-computing literature: a diurnal
(sinusoidal) base load with multiplicative noise and occasional flash
crowds.  The shape exercises the same code paths — time-varying,
sometimes-bursty demand feeding the estimator and the online auction —
which is what the evaluation needs (see DESIGN.md's substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DiurnalTraceConfig", "generate_demand_trace"]


@dataclass(frozen=True)
class DiurnalTraceConfig:
    """Shape parameters of the synthetic diurnal demand trace.

    ``base_rate`` is the mean request rate; the daily cycle swings it by
    ``amplitude`` (fraction of base); ``noise_sigma`` is the lognormal
    multiplicative noise per sample; flash crowds multiply the rate by
    ``flash_multiplier`` with probability ``flash_probability`` per
    sample.
    """

    base_rate: float = 10.0
    amplitude: float = 0.5
    period: float = 144.0  # samples per "day" (10-minute rounds)
    noise_sigma: float = 0.2
    flash_probability: float = 0.02
    flash_multiplier: float = 3.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ConfigurationError("base_rate must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigurationError("amplitude must be in [0, 1)")
        if self.period <= 0:
            raise ConfigurationError("period must be positive")
        if self.noise_sigma < 0:
            raise ConfigurationError("noise_sigma must be non-negative")
        if not 0.0 <= self.flash_probability <= 1.0:
            raise ConfigurationError("flash_probability must be in [0, 1]")
        if self.flash_multiplier < 1.0:
            raise ConfigurationError("flash_multiplier must be >= 1")


def generate_demand_trace(
    config: DiurnalTraceConfig,
    samples: int,
    rng: np.random.Generator,
    *,
    phase: float = 0.0,
) -> np.ndarray:
    """A length-``samples`` positive demand-rate trace.

    ``phase`` (in samples) offsets the diurnal cycle so different
    microservices peak at different times — the staggered-peaks property
    that makes resource *sharing* between them profitable in the first
    place.
    """
    if samples <= 0:
        raise ConfigurationError(f"samples must be positive, got {samples}")
    t = np.arange(samples, dtype=float)
    cycle = 1.0 + config.amplitude * np.sin(
        2.0 * np.pi * (t + phase) / config.period
    )
    noise = rng.lognormal(mean=0.0, sigma=config.noise_sigma, size=samples)
    flash = np.where(
        rng.random(samples) < config.flash_probability,
        config.flash_multiplier,
        1.0,
    )
    trace = config.base_rate * cycle * noise * flash
    return np.maximum(trace, 1e-6)
