"""Workload and market generation (Section V.A parameter settings).

Arrival processes (Poisson / deterministic / MMPP), synthetic bid markets
with the paper's U[10, 35] prices and [10, 40] capacities, named scenario
presets, and diurnal demand traces.
"""

from repro.workload.arrivals import DeterministicArrivals, MMPPArrivals, PoissonArrivals
from repro.workload.classes import (
    PAPER_CLASSES,
    RequestClassProfile,
    WorkDistribution,
)
from repro.workload.bidgen import (
    MarketConfig,
    generate_capacities,
    generate_horizon,
    generate_round,
    repair_horizon_capacities,
    ensure_online_feasible,
)
from repro.workload.scenarios import (
    PAPER_DEFAULTS,
    PaperScenario,
    bids_sweep,
    microservice_sweep,
    rounds_sweep,
)
from repro.workload.trace_driven import (
    TraceDrivenConfig,
    generate_trace_driven_horizon,
)
from repro.workload.traces import DiurnalTraceConfig, generate_demand_trace

__all__ = [
    "PAPER_CLASSES",
    "RequestClassProfile",
    "WorkDistribution",
    "DeterministicArrivals",
    "MMPPArrivals",
    "PoissonArrivals",
    "MarketConfig",
    "generate_capacities",
    "generate_horizon",
    "generate_round",
    "repair_horizon_capacities",
    "ensure_online_feasible",
    "PAPER_DEFAULTS",
    "PaperScenario",
    "bids_sweep",
    "microservice_sweep",
    "rounds_sweep",
    "DiurnalTraceConfig",
    "generate_demand_trace",
    "TraceDrivenConfig",
    "generate_trace_driven_horizon",
]
