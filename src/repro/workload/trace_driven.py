"""Trace-driven horizon generation.

Connects the synthetic diurnal traces (:mod:`repro.workload.traces`) to
the market generator: each microservice gets its own phase-shifted demand
trace, each auction round samples the traces to decide *who* is needy and
*how much* they need, and bid supply comes from the microservices whose
trace is currently in a trough.  This reproduces the property the paper's
"real-world data traces" would provide — demand that is time-correlated
and staggered across tenants — which the i.i.d. per-round generator
deliberately lacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bids import Bid
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError
from repro.workload.bidgen import repair_horizon_capacities
from repro.workload.traces import DiurnalTraceConfig, generate_demand_trace

__all__ = ["TraceDrivenConfig", "generate_trace_driven_horizon"]


@dataclass(frozen=True)
class TraceDrivenConfig:
    """Shape of a trace-driven online experiment.

    ``needy_quantile`` splits the fleet each round: microservices whose
    current trace value sits above that quantile of the round's values
    become buyers, the rest sell.  Demand units scale with how far above
    the threshold a buyer's trace is, capped at ``max_units``.
    """

    n_microservices: int = 25
    rounds: int = 10
    needy_quantile: float = 0.75
    max_units: int = 4
    price_range: tuple[float, float] = (10.0, 35.0)
    coverage_range: tuple[int, int] = (1, 3)
    bids_per_seller: int = 2
    trace: DiurnalTraceConfig = DiurnalTraceConfig(period=20.0)

    def __post_init__(self) -> None:
        if self.n_microservices < 4:
            raise ConfigurationError("need at least 4 microservices")
        if self.rounds <= 0:
            raise ConfigurationError("rounds must be positive")
        if not 0.5 <= self.needy_quantile < 1.0:
            raise ConfigurationError(
                f"needy_quantile must be in [0.5, 1), got {self.needy_quantile}"
            )
        if self.max_units <= 0:
            raise ConfigurationError("max_units must be positive")


def generate_trace_driven_horizon(
    config: TraceDrivenConfig,
    rng: np.random.Generator,
    *,
    capacity_range: tuple[int, int] = (10, 40),
) -> tuple[list[WSPInstance], dict[int, int]]:
    """Build a horizon whose buyer/seller split follows diurnal traces.

    Returns ``(rounds, capacities)`` like the i.i.d. generator; offline
    feasibility is repaired the same way.  Because traces are staggered
    (each microservice gets a random phase), the buyer set rotates over
    the horizon — the same microservice sells in its trough and buys at
    its peak, exactly Figure 1's two-way sharing story.
    """
    ids = list(range(config.n_microservices))
    traces = {
        sid: generate_demand_trace(
            config.trace,
            config.rounds,
            rng,
            phase=float(rng.uniform(0.0, config.trace.period)),
        )
        for sid in ids
    }
    plow, phigh = config.price_range
    rounds: list[WSPInstance] = []
    for t in range(config.rounds):
        values = {sid: float(traces[sid][t]) for sid in ids}
        threshold = float(
            np.quantile(list(values.values()), config.needy_quantile)
        )
        buyers = [sid for sid in ids if values[sid] > threshold]
        sellers = [sid for sid in ids if sid not in buyers]
        if not buyers:  # flat trace round: nobody needs anything
            rounds.append(WSPInstance(bids=(), demand={}, price_ceiling=phigh * 2))
            continue
        demand = {
            buyer: min(
                config.max_units,
                max(1, int(round(values[buyer] / max(threshold, 1e-9)))),
            )
            for buyer in buyers
        }
        bids: list[Bid] = []
        clow, chigh = config.coverage_range
        bid0_cover: dict[int, set[int]] = {b: set() for b in buyers}
        for seller in sellers:
            for j in range(config.bids_per_seller):
                size = int(rng.integers(clow, min(chigh, len(buyers)) + 1))
                covered = set(
                    int(b) for b in rng.choice(buyers, size=size, replace=False)
                )
                bids.append((seller, j, covered))
                if j == 0:
                    for buyer in covered:
                        bid0_cover[buyer].add(seller)
        # Same bid-0 anchored repair as the i.i.d. generator (+2 slack).
        for buyer in buyers:
            target = min(len(sellers), demand[buyer] + 2)
            missing = target - len(bid0_cover[buyer])
            if missing <= 0:
                continue
            candidates = [s for s in sellers if s not in bid0_cover[buyer]]
            if len(candidates) < missing:
                demand[buyer] = max(1, len(bid0_cover[buyer]))
                continue
            for seller in rng.choice(candidates, size=missing, replace=False):
                for idx, (s, j, covered) in enumerate(bids):
                    if s == int(seller) and j == 0:
                        covered.add(buyer)
                        break
                bid0_cover[buyer].add(int(seller))
        built = tuple(
            Bid(
                seller=seller,
                index=j,
                covered=frozenset(covered),
                price=float(rng.uniform(plow, phigh)),
            )
            for seller, j, covered in bids
        )
        rounds.append(
            WSPInstance.from_bids(built, demand, price_ceiling=phigh * 2)
        )
    capacities = {
        sid: int(rng.integers(capacity_range[0], capacity_range[1] + 1))
        for sid in ids
    }
    capacities = repair_horizon_capacities(rounds, capacities)
    return rounds, capacities
