"""Synthetic market generators matching the paper's evaluation settings.

Section V.A: "The prices of bids are uniformly distributed in the range of
[10, 35] and the value of 𝔾ᵗ is set within the range of [10, 40].  We pick
microservices randomly within the edge clouds to form the microservice
set Ŝ."  These generators produce single-round :class:`WSPInstance`
objects and whole online horizons with exactly those distributions, while
guaranteeing feasibility by construction (each buyer is covered by at
least its demand in distinct sellers).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.bids import Bid
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError

__all__ = [
    "MarketConfig",
    "generate_round",
    "generate_horizon",
    "generate_capacities",
    "repair_horizon_capacities",
    "ensure_online_feasible",
]


from dataclasses import dataclass


@dataclass(frozen=True)
class MarketConfig:
    """Knobs of the synthetic market (defaults = the paper's Section V.A).

    ``n_sellers`` plays the role of the paper's 25–75 microservices willing
    to share; ``n_buyers`` the needy subset Ŝ; ``bids_per_seller`` the
    alternative-bid budget ``J`` (paper default 2); ``price_range`` the
    U[10, 35] bid prices; ``demand_units_range`` the per-buyer coverage
    requirement.  ``coverage_range`` bounds how many buyers one bid covers.
    """

    n_sellers: int = 25
    n_buyers: int = 5
    bids_per_seller: int = 2
    price_range: tuple[float, float] = (10.0, 35.0)
    demand_units_range: tuple[int, int] = (1, 4)
    coverage_range: tuple[int, int] = (1, 3)
    coverage_slack: int = 3
    price_ceiling: float = 50.0

    def __post_init__(self) -> None:
        if self.n_sellers <= 0 or self.n_buyers <= 0:
            raise ConfigurationError("n_sellers and n_buyers must be positive")
        if self.bids_per_seller <= 0:
            raise ConfigurationError("bids_per_seller must be positive")
        low, high = self.price_range
        if not 0 < low <= high:
            raise ConfigurationError(f"invalid price_range {self.price_range}")
        dlow, dhigh = self.demand_units_range
        if not 1 <= dlow <= dhigh:
            raise ConfigurationError(
                f"invalid demand_units_range {self.demand_units_range}"
            )
        clow, chigh = self.coverage_range
        if not 1 <= clow <= chigh:
            raise ConfigurationError(f"invalid coverage_range {self.coverage_range}")
        if self.coverage_slack < 0:
            raise ConfigurationError(
                f"coverage_slack must be non-negative, got {self.coverage_slack}"
            )
        if dhigh > self.n_sellers:
            raise ConfigurationError(
                "maximum demand units cannot exceed the number of sellers "
                f"({dhigh} > {self.n_sellers})"
            )


def _buyer_ids(config: MarketConfig) -> list[int]:
    # Buyers occupy ids [0, n_buyers); sellers [1000, 1000 + n_sellers).
    return list(range(config.n_buyers))


def _seller_ids(config: MarketConfig) -> list[int]:
    return list(range(1000, 1000 + config.n_sellers))


def generate_round(
    config: MarketConfig, rng: np.random.Generator
) -> WSPInstance:
    """One feasible single-round market drawn from the paper's settings.

    Feasibility is guaranteed constructively: after the random bids are
    drawn, every buyer short of coverage gets additional sellers' first
    bids extended to cover it (still uniformly priced, so the price
    distribution is preserved).
    """
    buyers = _buyer_ids(config)
    sellers = _seller_ids(config)
    dlow, dhigh = config.demand_units_range
    demand = {
        buyer: int(rng.integers(dlow, dhigh + 1)) for buyer in buyers
    }
    clow, chigh = config.coverage_range
    plow, phigh = config.price_range

    coverage_sets: dict[tuple[int, int], set[int]] = {}
    for seller in sellers:
        for j in range(config.bids_per_seller):
            size = int(rng.integers(clow, min(chigh, len(buyers)) + 1))
            covered = set(
                int(b) for b in rng.choice(buyers, size=size, replace=False)
            )
            coverage_sets[(seller, j)] = covered

    # Repair pass: ensure each buyer is covered by >= demand distinct
    # sellers *through their first bid alone*.  Only one alternative bid
    # per seller can win, so counting coverage across a seller's
    # alternatives would over-estimate supply; anchoring the repair on bid
    # 0 makes "every seller plays its first bid" a feasible fallback and
    # hence guarantees instance feasibility outright.
    bid0_covering: dict[int, set[int]] = {b: set() for b in buyers}
    for (seller, j), covered in coverage_sets.items():
        if j != 0:
            continue
        for buyer in covered:
            bid0_covering[buyer].add(seller)
    for buyer in buyers:
        # Repair past the bare requirement: `coverage_slack` extra distinct
        # sellers per buyer keep the market off the feasibility boundary,
        # where the greedy (and any online mechanism burning capacity)
        # would otherwise have zero room for error.
        target = min(len(sellers), demand[buyer] + config.coverage_slack)
        missing = target - len(bid0_covering[buyer])
        if missing <= 0:
            continue
        candidates = [s for s in sellers if s not in bid0_covering[buyer]]
        if len(candidates) < missing:
            raise ConfigurationError(
                f"cannot repair coverage for buyer {buyer}: not enough sellers"
            )
        chosen = rng.choice(candidates, size=missing, replace=False)
        for seller in chosen:
            coverage_sets[(int(seller), 0)].add(buyer)
            bid0_covering[buyer].add(int(seller))

    bids = [
        Bid(
            seller=seller,
            index=j,
            covered=frozenset(covered),
            price=float(rng.uniform(plow, phigh)),
        )
        for (seller, j), covered in sorted(coverage_sets.items())
    ]
    return WSPInstance.from_bids(bids, demand, price_ceiling=config.price_ceiling)


def generate_capacities(
    config: MarketConfig,
    rng: np.random.Generator,
    *,
    capacity_range: tuple[int, int] = (10, 40),
) -> dict[int, int]:
    """Long-run sharing capacities Θᵢ per seller (paper's 𝔾ᵗ ∈ [10, 40])."""
    low, high = capacity_range
    if not 1 <= low <= high:
        raise ConfigurationError(f"invalid capacity_range {capacity_range}")
    return {
        seller: int(rng.integers(low, high + 1))
        for seller in _seller_ids(config)
    }


def generate_horizon(
    config: MarketConfig,
    rng: np.random.Generator,
    *,
    rounds: int = 10,
    capacity_range: tuple[int, int] = (10, 40),
    ensure_feasible: bool = True,
) -> tuple[list[WSPInstance], dict[int, int]]:
    """An online horizon: ``rounds`` independent rounds + capacities Θᵢ.

    Demands and bids are redrawn each round ("resource demands ... may
    vary arbitrarily as time elapses"); seller identities and capacities
    persist across rounds, which is what makes the capacity-aware online
    scaling of MSOA meaningful.

    With ``ensure_feasible`` (default), the drawn capacities are inflated
    until the *offline* horizon ILP admits a solution: per-round repair
    already guarantees each round is coverable in isolation, but the
    long-run capacity coupling (constraint 11) can still starve a buyer
    whose few covering sellers get depleted.  The paper's analysis assumes
    a feasible offline problem (Definition 6 divides by its optimum), so
    the generator provides one.
    """
    if rounds <= 0:
        raise ConfigurationError(f"rounds must be positive, got {rounds}")
    capacities = generate_capacities(config, rng, capacity_range=capacity_range)
    horizon = [generate_round(config, rng) for _ in range(rounds)]
    if ensure_feasible:
        capacities = repair_horizon_capacities(horizon, capacities)
    return horizon, capacities


def repair_horizon_capacities(
    horizon: list[WSPInstance],
    capacities: Mapping[int, int],
    *,
    inflation: float = 1.5,
    max_attempts: int = 12,
) -> dict[int, int]:
    """Inflate capacities until the offline horizon ILP is feasible.

    Multiplies every Θᵢ by ``inflation`` per failed attempt, preserving
    the relative capacity spread of the original draw.  Raises
    :class:`~repro.errors.ConfigurationError` if even effectively
    unbounded capacities cannot make the horizon feasible (which would
    indicate per-round infeasibility, a generator bug).
    """
    # Imported here: repro.solvers does not depend on repro.workload, so
    # the late import avoids a package cycle at module load time.
    from repro.errors import InfeasibleInstanceError, SolverError
    from repro.solvers.milp import solve_horizon_optimal

    repaired = {seller: int(cap) for seller, cap in capacities.items()}
    for _ in range(max_attempts):
        try:
            # A short budget: when HiGHS cannot even decide feasibility
            # quickly the instance is boundary-tight, and inflating the
            # capacities both loosens it and is the repair we would apply
            # anyway if it turned out infeasible.
            solve_horizon_optimal(
                horizon, repaired, feasibility_only=True, time_limit=20.0
            )
        except (InfeasibleInstanceError, SolverError):
            repaired = {
                seller: int(np.ceil(cap * inflation))
                for seller, cap in repaired.items()
            }
            continue
        return repaired
    raise ConfigurationError(
        "horizon remains infeasible even with inflated capacities; "
        "check per-round feasibility of the generated instances"
    )


def ensure_online_feasible(
    horizon: Sequence[WSPInstance],
    capacities: Mapping[int, int],
    *,
    inflation: float = 1.5,
    max_attempts: int = 12,
) -> dict[int, int]:
    """Inflate capacities until the *online* mechanism never gets stuck.

    Offline feasibility (see :func:`repair_horizon_capacities`) guarantees
    a clairvoyant schedule exists, but the online greedy can still corner
    itself by depleting a bottleneck seller early.  This probe runs MSOA
    itself (with the cheap runner-up payment rule — payments don't affect
    allocation) and inflates all capacities until every round completes.
    Experiments use it so the paper's implicit "demand is always
    satisfied" assumption (constraint 10 holds each round) is met.
    """
    from repro.core.msoa import run_msoa
    from repro.core.ssam import PaymentRule
    from repro.errors import InfeasibleInstanceError

    repaired = {seller: int(cap) for seller, cap in capacities.items()}
    for _ in range(max_attempts):
        try:
            run_msoa(
                horizon,
                repaired,
                payment_rule=PaymentRule.ITERATION_RUNNER_UP,
                on_infeasible="raise",
            )
        except InfeasibleInstanceError:
            repaired = {
                seller: int(np.ceil(cap * inflation))
                for seller, cap in repaired.items()
            }
            continue
        return repaired
    raise ConfigurationError(
        "online horizon remains infeasible even with inflated capacities"
    )
