"""Request-class profiles: delay classes with diverse processing times.

Section V.A distinguishes delay-sensitive (Poisson mean 5) and
delay-tolerant (mean 10) microservice requests; the conclusion lists
"diverse processing time of each task" as future work.  This module
implements both: a :class:`RequestClassProfile` couples an arrival rate
with a service-time distribution (exponential, deterministic, or
heavy-tailed Pareto) so the platform simulation can stress the demand
estimator with realistic task-length diversity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.edge.microservice import DelayClass
from repro.errors import ConfigurationError

__all__ = ["WorkDistribution", "RequestClassProfile", "PAPER_CLASSES"]


class WorkDistribution(enum.Enum):
    """Shape of the per-request service requirement."""

    EXPONENTIAL = "exponential"
    DETERMINISTIC = "deterministic"
    PARETO = "pareto"
    """Heavy-tailed: most requests tiny, a few enormous (shape > 1)."""


@dataclass(frozen=True)
class RequestClassProfile:
    """One request class: arrival intensity plus work-size distribution.

    Attributes
    ----------
    delay_class:
        Which scheduling class the requests belong to.
    arrival_rate:
        Poisson arrival intensity (requests per time unit, per user).
    work_mean:
        Mean service requirement in work units.
    distribution:
        Work-size distribution family.
    pareto_shape:
        Tail index for :attr:`WorkDistribution.PARETO` (must exceed 1 so
        the mean exists; lower = heavier tail).
    """

    delay_class: DelayClass
    arrival_rate: float
    work_mean: float = 1.0
    distribution: WorkDistribution = WorkDistribution.EXPONENTIAL
    pareto_shape: float = 2.5

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival_rate must be positive, got {self.arrival_rate}"
            )
        if self.work_mean <= 0:
            raise ConfigurationError(
                f"work_mean must be positive, got {self.work_mean}"
            )
        if self.pareto_shape <= 1.0:
            raise ConfigurationError(
                f"pareto_shape must exceed 1 (finite mean), got {self.pareto_shape}"
            )

    def sample_work(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` service requirements with mean :attr:`work_mean`."""
        if size <= 0:
            raise ConfigurationError(f"size must be positive, got {size}")
        if self.distribution is WorkDistribution.DETERMINISTIC:
            return np.full(size, self.work_mean)
        if self.distribution is WorkDistribution.EXPONENTIAL:
            return rng.exponential(self.work_mean, size=size)
        # Pareto with mean = scale * shape / (shape - 1); solve for scale.
        scale = self.work_mean * (self.pareto_shape - 1.0) / self.pareto_shape
        return scale * (1.0 + rng.pareto(self.pareto_shape, size=size))

    @property
    def coefficient_of_variation(self) -> float:
        """Std/mean of the work distribution (∞-guarded for Pareto).

        Deterministic: 0.  Exponential: 1.  Pareto: finite only for
        shape > 2, else ``inf`` — the heavy-tail regime where the
        paper's mean-based demand indicators are most stressed.
        """
        if self.distribution is WorkDistribution.DETERMINISTIC:
            return 0.0
        if self.distribution is WorkDistribution.EXPONENTIAL:
            return 1.0
        shape = self.pareto_shape
        if shape <= 2.0:
            return float("inf")
        return 1.0 / np.sqrt(shape * (shape - 2.0))


PAPER_CLASSES = {
    DelayClass.DELAY_SENSITIVE: RequestClassProfile(
        delay_class=DelayClass.DELAY_SENSITIVE,
        arrival_rate=5.0,
        work_mean=1.0,
        distribution=WorkDistribution.EXPONENTIAL,
    ),
    DelayClass.DELAY_TOLERANT: RequestClassProfile(
        delay_class=DelayClass.DELAY_TOLERANT,
        arrival_rate=10.0,
        work_mean=1.0,
        distribution=WorkDistribution.EXPONENTIAL,
    ),
}
"""The Section-V.A workload classes (Poisson means 5 and 10)."""
