"""Arrival-process generators for request workloads.

Three processes cover the paper's evaluation needs and common ablations:

* :class:`PoissonArrivals` — the paper's workload (Poisson with means 5
  and 10 for the two delay classes).
* :class:`DeterministicArrivals` — fixed-gap arrivals, useful as a
  variance-free control in tests.
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process for
  bursty-traffic ablations (quiet/burst phases with different rates).

All generators produce sorted absolute arrival timestamps within
``[0, horizon)`` from an explicit RNG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PoissonArrivals", "DeterministicArrivals", "MMPPArrivals"]


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson arrivals at the given rate."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate}")

    def sample(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        """Arrival timestamps in ``[0, horizon)``, sorted ascending."""
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        # Draw the count, then order statistics of uniforms — one vectorized
        # pass instead of sequential exponential gaps.
        count = int(rng.poisson(self.rate * horizon))
        return np.sort(rng.uniform(0.0, horizon, size=count))


@dataclass(frozen=True)
class DeterministicArrivals:
    """Evenly spaced arrivals at the given rate (gap = 1/rate)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate}")

    def sample(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        """Arrival timestamps in ``[0, horizon)`` (RNG unused)."""
        del rng
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        gap = 1.0 / self.rate
        return np.arange(gap, horizon, gap)


@dataclass(frozen=True)
class MMPPArrivals:
    """Two-state Markov-modulated Poisson process (quiet ↔ burst).

    The process alternates between a quiet phase (rate ``quiet_rate``)
    and a burst phase (rate ``burst_rate``); phase durations are
    exponential with the given means.  Used by the bursty-workload
    ablation to stress the demand estimator.
    """

    quiet_rate: float
    burst_rate: float
    mean_quiet: float = 5.0
    mean_burst: float = 1.0

    def __post_init__(self) -> None:
        if self.quiet_rate <= 0 or self.burst_rate <= 0:
            raise ConfigurationError("both phase rates must be positive")
        if self.mean_quiet <= 0 or self.mean_burst <= 0:
            raise ConfigurationError("both phase duration means must be positive")

    def sample(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        """Arrival timestamps in ``[0, horizon)``, sorted ascending."""
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        times: list[np.ndarray] = []
        now = 0.0
        bursting = False
        while now < horizon:
            mean = self.mean_burst if bursting else self.mean_quiet
            rate = self.burst_rate if bursting else self.quiet_rate
            duration = min(float(rng.exponential(mean)), horizon - now)
            count = int(rng.poisson(rate * duration))
            if count:
                times.append(now + np.sort(rng.uniform(0.0, duration, size=count)))
            now += duration
            bursting = not bursting
        if not times:
            return np.empty(0)
        return np.concatenate(times)
