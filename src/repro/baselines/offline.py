"""The clairvoyant offline optimum over a whole horizon.

Definition 6's competitive ratio divides MSOA's online social cost by
"the social cost produced by an optimal solution of the offline winner
selection problem" — an omniscient solver that sees every round's bids
and demands in advance and optimizes ILP (7)–(11) jointly, including the
long-run capacity coupling.  This module wraps the horizon MILP in the
same result shape the online mechanism produces, plus a greedy offline
heuristic used when the exact horizon MILP would dominate a sweep's
runtime.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.msoa import run_msoa
from repro.errors import SolverError
from repro.core.wsp import WSPInstance
from repro.solvers.milp import solve_horizon_optimal

__all__ = [
    "OfflineOutcome",
    "OfflineResult",
    "run_offline_optimal",
    "run_offline_greedy",
]


@dataclass(frozen=True)
class OfflineOutcome:
    """Social cost of a clairvoyant solution over a horizon.

    Horizon benchmarks are a cost denominator, not an auction: no
    payments or per-round winner sets survive the MILP, so this stays a
    slim cost record.  The :attr:`mechanism` tag keeps it addressable
    through the registry like every other outcome.
    """

    social_cost: float
    per_round_cost: tuple[float, ...]
    exact: bool
    mechanism: str = "offline-milp"

    @property
    def rounds(self) -> int:
        """Number of rounds in the horizon."""
        return len(self.per_round_cost)


def run_offline_optimal(
    rounds: Sequence[WSPInstance],
    capacities: Mapping[int, int] | None = None,
) -> OfflineOutcome:
    """Solve the horizon ILP (7)–(11) (the ratio denominator).

    Solved to a 1% MIP gap by default.  Pathological instances can defy
    even incumbent-finding inside the time budget (set multicover gives
    branch-and-bound nothing to prune); the fallback chain then relaxes
    the gap, and as a last resort substitutes the greedy offline heuristic
    (flagged ``exact=False``), so a sweep never dies on one hard seed.
    """
    solution = None
    for gap, budget in ((0.01, 120.0), (0.10, 60.0)):
        try:
            solution = solve_horizon_optimal(
                rounds, capacities, mip_rel_gap=gap, time_limit=budget
            )
            break
        except SolverError:
            continue
    if solution is None:
        if capacities is None:
            raise SolverError(
                "offline horizon MILP found no incumbent and no capacity "
                "map was given for the greedy fallback"
            )
        return run_offline_greedy(rounds, capacities)
    per_round = [0.0] * len(rounds)
    for bid, round_index in zip(solution.chosen, solution.rounds):
        per_round[round_index] += bid.price
    return OfflineOutcome(
        social_cost=solution.objective,
        per_round_cost=tuple(per_round),
        exact=True,
        mechanism="offline-milp",
    )


def run_offline_greedy(
    rounds: Sequence[WSPInstance],
    capacities: Mapping[int, int],
) -> OfflineOutcome:
    """A fast offline heuristic: MSOA with the ψ scaling disabled.

    Running the per-round greedy with an enormous α freezes the scarcity
    prices at ≈ 0, i.e. each round is solved greedily at face prices with
    only the hard capacity exclusions — a useful, cheap upper bound on
    the offline optimum for very large sweeps.  Flagged ``exact=False``.
    """
    outcome = run_msoa(
        rounds, capacities, alpha=1e12, on_infeasible="skip"
    )
    return OfflineOutcome(
        social_cost=outcome.social_cost,
        per_round_cost=tuple(r.social_cost for r in outcome.rounds),
        exact=False,
        mechanism="offline-greedy",
    )


def __getattr__(name: str):
    if name == "OfflineResult":
        warnings.warn(
            "OfflineResult has been renamed to OfflineOutcome",
            DeprecationWarning,
            stacklevel=2,
        )
        return OfflineOutcome
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
