"""Greedy pay-as-bid — the same allocation as SSAM, naive payments.

This baseline isolates the *payment rule*: winners are chosen by exactly
SSAM's greedy, but each is paid its announced price instead of a critical
value.  Pay-as-bid is NOT truthful — a seller gains by over-asking — so
comparing it with SSAM quantifies the "price of truthfulness" (the
payment overhead visible in Figure 3(b), where total payment sits above
social cost).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bids import Bid
from repro.core.ssam import greedy_selection
from repro.core.wsp import WSPInstance

__all__ = ["PayAsBidResult", "run_pay_as_bid"]


@dataclass(frozen=True)
class PayAsBidResult:
    """Outcome of the pay-as-bid baseline on one round."""

    winners: tuple[Bid, ...]

    @property
    def social_cost(self) -> float:
        """Σ announced prices (equals the SSAM allocation's social cost)."""
        return float(sum(bid.price for bid in self.winners))

    @property
    def total_payment(self) -> float:
        """Pay-as-bid: payment = announced price."""
        return self.social_cost


def run_pay_as_bid(instance: WSPInstance) -> PayAsBidResult:
    """Greedy winner selection, pay-as-bid payments."""
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    if not demand:
        return PayAsBidResult(winners=())
    steps = greedy_selection(instance.bids, demand)
    return PayAsBidResult(winners=tuple(step.bid for step in steps))
