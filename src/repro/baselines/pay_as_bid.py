"""Greedy pay-as-bid — the same allocation as SSAM, naive payments.

This baseline isolates the *payment rule*: winners are chosen by exactly
SSAM's greedy, but each is paid its announced price instead of a critical
value.  Pay-as-bid is NOT truthful — a seller gains by over-asking — so
comparing it with SSAM quantifies the "price of truthfulness" (the
payment overhead visible in Figure 3(b), where total payment sits above
social cost).
"""

from __future__ import annotations

import warnings

from repro.core.mechanism import outcome_from_selection
from repro.core.outcomes import AuctionOutcome
from repro.core.ssam import greedy_selection
from repro.core.wsp import WSPInstance
from repro.errors import ConfigurationError

__all__ = ["PayAsBidResult", "run_pay_as_bid"]


def run_pay_as_bid(
    instance: WSPInstance, *, engine: str = "fast"
) -> AuctionOutcome:
    """Greedy winner selection, pay-as-bid payments.

    ``engine`` picks the selection implementation (``"fast"``,
    ``"reference"`` or ``"columnar"``); all three produce the same
    allocation, so the choice only affects speed.
    """
    if engine == "fast":
        from repro.core.engine import fast_greedy_selection as select
    elif engine == "columnar":
        from repro.core.columnar import columnar_greedy_selection as select
    elif engine == "reference":
        select = greedy_selection
    else:
        raise ConfigurationError(
            f"engine must be 'fast', 'reference' or 'columnar', got {engine!r}"
        )
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    steps = select(instance.bids, demand) if demand else ()
    return outcome_from_selection(
        instance,
        tuple(step.bid for step in steps),
        mechanism="pay-as-bid",
        payment_rule="pay-as-bid",
    )


def __getattr__(name: str):
    if name == "PayAsBidResult":
        warnings.warn(
            "PayAsBidResult is deprecated; run_pay_as_bid now returns the "
            "uniform repro.core.outcomes.AuctionOutcome",
            DeprecationWarning,
            stacklevel=2,
        )
        return AuctionOutcome
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
