"""Baseline mechanisms the paper's design is compared against.

* :mod:`repro.baselines.fixed_pricing` — the introduction's posted-price
  alternative.
* :mod:`repro.baselines.random_mechanism` — the sanity-floor random cover.
* :mod:`repro.baselines.pay_as_bid` — SSAM's allocation with naive
  payments (isolates the price of truthfulness).
* :mod:`repro.baselines.vcg` — the exact truthful gold standard.
* :mod:`repro.baselines.offline` — the clairvoyant horizon optimum
  (competitive-ratio denominator).
"""

from repro.baselines.fixed_pricing import PostedPriceResult, run_posted_price
from repro.baselines.greedy_variants import (
    VARIANT_KEYS,
    GreedyVariantResult,
    run_greedy_variant,
)
from repro.baselines.offline import OfflineResult, run_offline_greedy, run_offline_optimal
from repro.baselines.pay_as_bid import PayAsBidResult, run_pay_as_bid
from repro.baselines.random_mechanism import RandomSelectionResult, run_random_selection
from repro.baselines.vcg import VCGResult, run_vcg

__all__ = [
    "PostedPriceResult",
    "run_posted_price",
    "OfflineResult",
    "VARIANT_KEYS",
    "GreedyVariantResult",
    "run_greedy_variant",
    "run_offline_greedy",
    "run_offline_optimal",
    "PayAsBidResult",
    "run_pay_as_bid",
    "RandomSelectionResult",
    "run_random_selection",
    "VCGResult",
    "run_vcg",
]
