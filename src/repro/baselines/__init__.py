"""Baseline mechanisms the paper's design is compared against.

* :mod:`repro.baselines.fixed_pricing` — the introduction's posted-price
  alternative.
* :mod:`repro.baselines.random_mechanism` — the sanity-floor random cover.
* :mod:`repro.baselines.pay_as_bid` — SSAM's allocation with naive
  payments (isolates the price of truthfulness).
* :mod:`repro.baselines.vcg` — the exact truthful gold standard.
* :mod:`repro.baselines.offline` — the clairvoyant horizon optimum
  (competitive-ratio denominator).

Every single-round baseline emits the uniform
:class:`~repro.core.outcomes.AuctionOutcome`; prefer addressing them
through the registry (:func:`repro.core.registry.get_mechanism`).  The
old per-mechanism result classes remain importable as deprecated aliases.
"""

from repro.baselines.fixed_pricing import PostedPriceOutcome, run_posted_price
from repro.baselines.greedy_variants import (
    VARIANT_KEYS,
    GreedyVariantOutcome,
    run_greedy_variant,
)
from repro.baselines.offline import (
    OfflineOutcome,
    run_offline_greedy,
    run_offline_optimal,
)
from repro.baselines.pay_as_bid import run_pay_as_bid
from repro.baselines.random_mechanism import run_random_selection
from repro.baselines.vcg import run_vcg

__all__ = [
    "PostedPriceOutcome",
    "PostedPriceResult",
    "run_posted_price",
    "OfflineOutcome",
    "OfflineResult",
    "VARIANT_KEYS",
    "GreedyVariantOutcome",
    "GreedyVariantResult",
    "run_greedy_variant",
    "run_offline_greedy",
    "run_offline_optimal",
    "PayAsBidResult",
    "run_pay_as_bid",
    "RandomSelectionResult",
    "run_random_selection",
    "VCGResult",
    "run_vcg",
]

# Deprecated result-class aliases resolve lazily through the defining
# module's own __getattr__, so the DeprecationWarning fires at use, not
# at package import.
_DEPRECATED_HOMES = {
    "PostedPriceResult": "repro.baselines.fixed_pricing",
    "GreedyVariantResult": "repro.baselines.greedy_variants",
    "OfflineResult": "repro.baselines.offline",
    "PayAsBidResult": "repro.baselines.pay_as_bid",
    "RandomSelectionResult": "repro.baselines.random_mechanism",
    "VCGResult": "repro.baselines.vcg",
}


def __getattr__(name: str):
    home = _DEPRECATED_HOMES.get(name)
    if home is not None:
        import importlib

        return getattr(importlib.import_module(home), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
