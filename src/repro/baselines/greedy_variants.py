"""Alternative greedy selection rules — why SSAM's density rule wins.

SSAM picks the bid with the least *average price per marginal unit*
(a density rule).  Two natural simplifications keep coming up in
practice, and both are measurably worse:

* **cheapest-price-first** ignores how much a bid contributes: it hoards
  tiny cheap bids and buys coverage one unit at a time;
* **largest-coverage-first** ignores price: it grabs wholesale bids even
  when they are overpriced.

Both run the same selection skeleton as SSAM (feasibility guard, one bid
per seller) so the comparison isolates the *ranking key*; the ablation
bench reports their social-cost gap against SSAM and the optimum.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.bids import Bid
from repro.core.mechanism import outcome_from_selection
from repro.core.outcomes import AuctionOutcome
from repro.core.ssam import _selection_strands  # shared guard, one source of truth
from repro.core.wsp import CoverageState, WSPInstance
from repro.errors import InfeasibleInstanceError

__all__ = [
    "GreedyVariantOutcome",
    "GreedyVariantResult",
    "run_greedy_variant",
    "VARIANT_KEYS",
]


#: ranking keys: smaller sorts first; utility is the marginal contribution.
VARIANT_KEYS: dict[str, Callable[[Bid, int], tuple]] = {
    "density": lambda bid, utility: (bid.price / utility, bid.price),
    "cheapest_price": lambda bid, utility: (bid.price, -utility),
    "largest_coverage": lambda bid, utility: (-utility, bid.price),
}


@dataclass(frozen=True)
class GreedyVariantOutcome(AuctionOutcome):
    """Winners of one alternative-greedy run, remembering the variant."""

    variant: str = "density"


def run_greedy_variant(
    instance: WSPInstance, variant: str = "density"
) -> GreedyVariantOutcome:
    """Cover the demand with the chosen ranking rule.

    ``"density"`` reproduces SSAM's allocation (asserted in tests);
    the other variants differ only in the sort key.  The same cheap
    feasibility guard applies so all variants terminate on the same
    instance families.
    """
    try:
        key_fn = VARIANT_KEYS[variant]
    except KeyError:
        raise InfeasibleInstanceError(
            f"unknown greedy variant {variant!r}; "
            f"choose from {sorted(VARIANT_KEYS)}"
        ) from None
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    coverage = CoverageState(demand=demand)
    active: list[Bid] = list(instance.bids)
    winners: list[Bid] = []
    while not coverage.satisfied:
        candidates = []
        for bid in active:
            utility = coverage.utility_of(bid)
            if utility > 0:
                candidates.append(
                    (key_fn(bid, utility) + (bid.seller, bid.index), bid)
                )
        if not candidates:
            raise InfeasibleInstanceError(
                f"{coverage.unmet} demand units cannot be covered "
                f"(variant {variant})"
            )
        candidates.sort(key=lambda item: item[0])
        chosen = candidates[0][1]
        for _, bid in candidates:
            if not _selection_strands(bid, active, coverage):
                chosen = bid
                break
        coverage.apply(chosen)
        winners.append(chosen)
        active = [bid for bid in active if bid.seller != chosen.seller]
    base = outcome_from_selection(
        instance,
        tuple(winners),
        mechanism=f"greedy-{variant.replace('_', '-')}",
        payment_rule="pay-as-bid",
    )
    return GreedyVariantOutcome(
        instance=base.instance,
        winners=base.winners,
        duals=base.duals,
        ratio_bound=base.ratio_bound,
        payment_rule=base.payment_rule,
        iterations=base.iterations,
        mechanism=base.mechanism,
        variant=variant,
    )


def __getattr__(name: str):
    if name == "GreedyVariantResult":
        warnings.warn(
            "GreedyVariantResult is deprecated; run_greedy_variant now "
            "returns GreedyVariantOutcome (a repro.core.outcomes."
            "AuctionOutcome)",
            DeprecationWarning,
            stacklevel=2,
        )
        return GreedyVariantOutcome
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
