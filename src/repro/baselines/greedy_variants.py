"""Alternative greedy selection rules — why SSAM's density rule wins.

SSAM picks the bid with the least *average price per marginal unit*
(a density rule).  Two natural simplifications keep coming up in
practice, and both are measurably worse:

* **cheapest-price-first** ignores how much a bid contributes: it hoards
  tiny cheap bids and buys coverage one unit at a time;
* **largest-coverage-first** ignores price: it grabs wholesale bids even
  when they are overpriced.

Both run the same selection skeleton as SSAM (feasibility guard, one bid
per seller) so the comparison isolates the *ranking key*; the ablation
bench reports their social-cost gap against SSAM and the optimum.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.bids import Bid
from repro.core.ssam import _selection_strands  # shared guard, one source of truth
from repro.core.wsp import CoverageState, WSPInstance
from repro.errors import InfeasibleInstanceError

__all__ = ["GreedyVariantResult", "run_greedy_variant", "VARIANT_KEYS"]


#: ranking keys: smaller sorts first; utility is the marginal contribution.
VARIANT_KEYS: dict[str, Callable[[Bid, int], tuple]] = {
    "density": lambda bid, utility: (bid.price / utility, bid.price),
    "cheapest_price": lambda bid, utility: (bid.price, -utility),
    "largest_coverage": lambda bid, utility: (-utility, bid.price),
}


@dataclass(frozen=True)
class GreedyVariantResult:
    """Winners of one alternative-greedy run."""

    variant: str
    winners: tuple[Bid, ...]

    @property
    def social_cost(self) -> float:
        """Σ winning prices."""
        return float(sum(bid.price for bid in self.winners))


def run_greedy_variant(
    instance: WSPInstance, variant: str = "density"
) -> GreedyVariantResult:
    """Cover the demand with the chosen ranking rule.

    ``"density"`` reproduces SSAM's allocation (asserted in tests);
    the other variants differ only in the sort key.  The same cheap
    feasibility guard applies so all variants terminate on the same
    instance families.
    """
    try:
        key_fn = VARIANT_KEYS[variant]
    except KeyError:
        raise InfeasibleInstanceError(
            f"unknown greedy variant {variant!r}; "
            f"choose from {sorted(VARIANT_KEYS)}"
        ) from None
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    coverage = CoverageState(demand=demand)
    active: list[Bid] = list(instance.bids)
    winners: list[Bid] = []
    while not coverage.satisfied:
        candidates = []
        for bid in active:
            utility = coverage.utility_of(bid)
            if utility > 0:
                candidates.append(
                    (key_fn(bid, utility) + (bid.seller, bid.index), bid)
                )
        if not candidates:
            raise InfeasibleInstanceError(
                f"{coverage.unmet} demand units cannot be covered "
                f"(variant {variant})"
            )
        candidates.sort(key=lambda item: item[0])
        chosen = candidates[0][1]
        for _, bid in candidates:
            if not _selection_strands(bid, active, coverage):
                chosen = bid
                break
        coverage.apply(chosen)
        winners.append(chosen)
        active = [bid for bid in active if bid.seller != chosen.seller]
    return GreedyVariantResult(variant=variant, winners=tuple(winners))
