"""The flat-price repurchasing baseline (the introduction's alternative).

"One approach ... may be 'pricing', i.e., letting the edge cloud operator
repurchase those resources from the microservices at fixed or flat
prices."  The operator posts a per-unit price; sellers accept when the
price covers their own per-unit cost; the platform then takes accepting
bids (cheapest-per-unit first, to be generous to the baseline) until
demand is covered, paying each winner the posted price per unit it
contributes.

The paper's critique — under-pricing starves the market, over-pricing
overpays — is exactly what the posted-price benchmark quantifies.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.bids import Bid
from repro.core.mechanism import outcome_from_selection
from repro.core.outcomes import AuctionOutcome
from repro.core.wsp import CoverageState, WSPInstance
from repro.errors import ConfigurationError

__all__ = ["PostedPriceOutcome", "PostedPriceResult", "run_posted_price"]


@dataclass(frozen=True)
class PostedPriceOutcome(AuctionOutcome):
    """A posted-price outcome, remembering the posted per-unit price.

    ``satisfied`` is False when the posted price attracted too few sellers
    to cover demand; the remaining units are in ``unmet_units``.  Social
    cost counts the winners' true costs (their original prices here);
    payments are posted-price per contributed unit.
    """

    posted_unit_price: float = 0.0


def run_posted_price(
    instance: WSPInstance, unit_price: float
) -> PostedPriceOutcome:
    """Run the flat-price baseline at the posted per-unit ``unit_price``.

    A seller accepts iff the posted revenue ``unit_price · |covered|``
    covers its cost; among a seller's accepting alternative bids the one
    with the best cost-per-unit is used (sellers self-select their most
    profitable offer).
    """
    if unit_price <= 0:
        raise ConfigurationError(f"unit_price must be positive, got {unit_price}")
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    coverage = CoverageState(demand=demand)
    # Each seller offers its cheapest-per-unit accepting bid.
    accepting: dict[int, Bid] = {}
    for bid in instance.bids:
        if unit_price * bid.size < bid.cost:
            continue  # posted price does not cover this seller's cost
        current = accepting.get(bid.seller)
        if current is None or bid.cost / bid.size < current.cost / current.size:
            accepting[bid.seller] = bid
    winners: list[Bid] = []
    for bid in sorted(
        accepting.values(), key=lambda b: (b.cost / b.size, b.seller)
    ):
        if coverage.satisfied:
            break
        if coverage.utility_of(bid) > 0:
            coverage.apply(bid)
            winners.append(bid)
    base = outcome_from_selection(
        instance,
        tuple(winners),
        mechanism="posted-price",
        payment_rule="posted-price",
        payments={bid.key: unit_price * bid.size for bid in winners},
        # Market efficiency under posted pricing is measured at true costs.
        original_prices={bid.key: bid.cost for bid in winners},
        require_cover=False,
    )
    return PostedPriceOutcome(
        instance=base.instance,
        winners=base.winners,
        duals=base.duals,
        ratio_bound=base.ratio_bound,
        payment_rule=base.payment_rule,
        iterations=base.iterations,
        mechanism=base.mechanism,
        posted_unit_price=unit_price,
    )


def __getattr__(name: str):
    if name == "PostedPriceResult":
        warnings.warn(
            "PostedPriceResult is deprecated; run_posted_price now returns "
            "PostedPriceOutcome (a repro.core.outcomes.AuctionOutcome)",
            DeprecationWarning,
            stacklevel=2,
        )
        return PostedPriceOutcome
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
