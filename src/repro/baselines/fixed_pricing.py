"""The flat-price repurchasing baseline (the introduction's alternative).

"One approach ... may be 'pricing', i.e., letting the edge cloud operator
repurchase those resources from the microservices at fixed or flat
prices."  The operator posts a per-unit price; sellers accept when the
price covers their own per-unit cost; the platform then takes accepting
bids (cheapest-per-unit first, to be generous to the baseline) until
demand is covered, paying each winner the posted price per unit it
contributes.

The paper's critique — under-pricing starves the market, over-pricing
overpays — is exactly what the posted-price benchmark quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bids import Bid
from repro.core.wsp import CoverageState, WSPInstance
from repro.errors import ConfigurationError

__all__ = ["PostedPriceResult", "run_posted_price"]


@dataclass(frozen=True)
class PostedPriceResult:
    """Outcome of the posted-price baseline on one round.

    ``satisfied`` is False when the posted price attracted too few sellers
    to cover demand; the remaining units are in ``unmet_units``.  Social
    cost counts the winners' true costs; payments are posted-price.
    """

    posted_unit_price: float
    winners: tuple[Bid, ...]
    satisfied: bool
    unmet_units: int

    @property
    def social_cost(self) -> float:
        """Σ true costs of accepted offers."""
        return float(sum(bid.cost for bid in self.winners))

    @property
    def total_payment(self) -> float:
        """Posted price × units contributed, summed over winners."""
        return float(
            sum(self.posted_unit_price * bid.size for bid in self.winners)
        )


def run_posted_price(
    instance: WSPInstance, unit_price: float
) -> PostedPriceResult:
    """Run the flat-price baseline at the posted per-unit ``unit_price``.

    A seller accepts iff the posted revenue ``unit_price · |covered|``
    covers its cost; among a seller's accepting alternative bids the one
    with the best cost-per-unit is used (sellers self-select their most
    profitable offer).
    """
    if unit_price <= 0:
        raise ConfigurationError(f"unit_price must be positive, got {unit_price}")
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    coverage = CoverageState(demand=demand)
    # Each seller offers its cheapest-per-unit accepting bid.
    accepting: dict[int, Bid] = {}
    for bid in instance.bids:
        if unit_price * bid.size < bid.cost:
            continue  # posted price does not cover this seller's cost
        current = accepting.get(bid.seller)
        if current is None or bid.cost / bid.size < current.cost / current.size:
            accepting[bid.seller] = bid
    winners: list[Bid] = []
    for bid in sorted(
        accepting.values(), key=lambda b: (b.cost / b.size, b.seller)
    ):
        if coverage.satisfied:
            break
        if coverage.utility_of(bid) > 0:
            coverage.apply(bid)
            winners.append(bid)
    return PostedPriceResult(
        posted_unit_price=unit_price,
        winners=tuple(winners),
        satisfied=coverage.satisfied,
        unmet_units=coverage.unmet,
    )
