"""VCG over the exact solver — the truthful gold-standard reference.

Vickrey–Clarke–Groves picks the *optimal* winner set (via the MILP) and
pays each winner its externality: the optimal cost of the market without
it minus the cost the others incur in the chosen optimum.  VCG is
truthful and individually rational but needs exact optimization (NP-hard
here), which is exactly why the paper builds a polynomial mechanism; the
benchmark comparing SSAM with VCG shows what the approximation costs in
social cost and what it saves in runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bids import Bid
from repro.core.wsp import WSPInstance
from repro.errors import InfeasibleInstanceError
from repro.solvers.milp import solve_wsp_optimal

__all__ = ["VCGResult", "run_vcg"]


@dataclass(frozen=True)
class VCGResult:
    """Outcome of the VCG mechanism on one round."""

    winners: tuple[Bid, ...]
    payments: dict[tuple[int, int], float]

    @property
    def social_cost(self) -> float:
        """Σ announced prices of the optimal winner set."""
        return float(sum(bid.price for bid in self.winners))

    @property
    def total_payment(self) -> float:
        """Σ VCG payments."""
        return float(sum(self.payments.values()))

    def utility_of(self, seller: int) -> float:
        """Quasi-linear utility of ``seller`` under VCG."""
        for bid in self.winners:
            if bid.seller == seller:
                return self.payments[bid.key] - bid.cost
        return 0.0


def run_vcg(instance: WSPInstance) -> VCGResult:
    """Run VCG: optimal allocation + Clarke-pivot payments.

    A winner whose removal makes the instance infeasible is pivotal for
    feasibility itself; its externality is capped with the instance's
    public price ceiling (one ceiling per unit it supplies), mirroring the
    monopolist cap used by SSAM's critical payments.
    """
    optimum = solve_wsp_optimal(instance)
    winners = optimum.chosen
    payments: dict[tuple[int, int], float] = {}
    others_cost = {
        bid.key: optimum.objective - bid.price for bid in winners
    }
    for bid in winners:
        reduced = instance.without_seller(bid.seller)
        try:
            without = solve_wsp_optimal(reduced).objective
        except InfeasibleInstanceError:
            without = others_cost[bid.key] + instance.effective_ceiling * bid.size
        payments[bid.key] = without - others_cost[bid.key]
    return VCGResult(winners=winners, payments=payments)
