"""VCG over the exact solver — the truthful gold-standard reference.

Vickrey–Clarke–Groves picks the *optimal* winner set (via the MILP) and
pays each winner its externality: the optimal cost of the market without
it minus the cost the others incur in the chosen optimum.  VCG is
truthful and individually rational but needs exact optimization (NP-hard
here), which is exactly why the paper builds a polynomial mechanism; the
benchmark comparing SSAM with VCG shows what the approximation costs in
social cost and what it saves in runtime.
"""

from __future__ import annotations

import warnings

from repro.core.mechanism import outcome_from_selection
from repro.core.outcomes import AuctionOutcome
from repro.core.wsp import WSPInstance
from repro.errors import InfeasibleInstanceError
from repro.solvers.milp import solve_wsp_optimal

__all__ = ["VCGResult", "run_vcg"]


def run_vcg(instance: WSPInstance) -> AuctionOutcome:
    """Run VCG: optimal allocation + Clarke-pivot payments.

    A winner whose removal makes the instance infeasible is pivotal for
    feasibility itself; its externality is capped with the instance's
    public price ceiling (one ceiling per unit it supplies), mirroring the
    monopolist cap used by SSAM's critical payments.
    """
    optimum = solve_wsp_optimal(instance)
    winners = optimum.chosen
    payments: dict[tuple[int, int], float] = {}
    others_cost = {
        bid.key: optimum.objective - bid.price for bid in winners
    }
    for bid in winners:
        reduced = instance.without_seller(bid.seller)
        try:
            without = solve_wsp_optimal(reduced).objective
        except InfeasibleInstanceError:
            without = others_cost[bid.key] + instance.effective_ceiling * bid.size
        payments[bid.key] = without - others_cost[bid.key]
    return outcome_from_selection(
        instance,
        winners,
        mechanism="vcg",
        payment_rule="clarke-pivot",
        payments=payments,
        ratio_bound=1.0,
    )


def __getattr__(name: str):
    if name == "VCGResult":
        warnings.warn(
            "VCGResult is deprecated; run_vcg now returns the uniform "
            "repro.core.outcomes.AuctionOutcome",
            DeprecationWarning,
            stacklevel=2,
        )
        return AuctionOutcome
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
