"""A random feasible winner selection (sanity-floor baseline).

Selects bids in a uniformly random seller order (one random bid per
seller) until demand is covered, paying each winner its announced price
(pay-as-bid).  Any sensible mechanism should beat this on social cost;
benchmarks use it as the floor of the comparison band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bids import Bid, group_bids_by_seller
from repro.core.wsp import CoverageState, WSPInstance
from repro.errors import InfeasibleInstanceError

__all__ = ["RandomSelectionResult", "run_random_selection"]


@dataclass(frozen=True)
class RandomSelectionResult:
    """Outcome of the random baseline on one round."""

    winners: tuple[Bid, ...]

    @property
    def social_cost(self) -> float:
        """Σ announced prices of the selected bids."""
        return float(sum(bid.price for bid in self.winners))

    @property
    def total_payment(self) -> float:
        """Pay-as-bid: payments equal the announced prices."""
        return self.social_cost


def run_random_selection(
    instance: WSPInstance, rng: np.random.Generator
) -> RandomSelectionResult:
    """Cover the demand with randomly ordered sellers' random bids.

    Useful bids (positive marginal utility) are taken as sellers come up
    in the shuffled order; sellers whose sampled bid is useless are
    revisited with their other bids before giving up, so the baseline
    fails only on genuinely infeasible instances.
    """
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    coverage = CoverageState(demand=demand)
    winners: list[Bid] = []
    by_seller = group_bids_by_seller(instance.bids)
    sellers = sorted(by_seller)
    rng.shuffle(sellers)
    for seller in sellers:
        if coverage.satisfied:
            break
        bids = list(by_seller[seller])
        rng.shuffle(bids)
        for bid in bids:
            if coverage.utility_of(bid) > 0:
                coverage.apply(bid)
                winners.append(bid)
                break
    if not coverage.satisfied:
        raise InfeasibleInstanceError(
            f"random selection could not cover {coverage.unmet} demand units"
        )
    return RandomSelectionResult(winners=tuple(winners))
