"""A random feasible winner selection (sanity-floor baseline).

Selects bids in a uniformly random seller order (one random bid per
seller) until demand is covered, paying each winner its announced price
(pay-as-bid).  Any sensible mechanism should beat this on social cost;
benchmarks use it as the floor of the comparison band.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.bids import Bid, group_bids_by_seller
from repro.core.mechanism import outcome_from_selection
from repro.core.outcomes import AuctionOutcome
from repro.core.wsp import CoverageState, WSPInstance
from repro.errors import InfeasibleInstanceError

__all__ = ["RandomSelectionResult", "run_random_selection"]


def run_random_selection(
    instance: WSPInstance, rng: np.random.Generator
) -> AuctionOutcome:
    """Cover the demand with randomly ordered sellers' random bids.

    Useful bids (positive marginal utility) are taken as sellers come up
    in the shuffled order; sellers whose sampled bid is useless are
    revisited with their other bids before giving up, so the baseline
    fails only on genuinely infeasible instances.
    """
    demand = {b: u for b, u in instance.demand.items() if u > 0}
    coverage = CoverageState(demand=demand)
    winners: list[Bid] = []
    by_seller = group_bids_by_seller(instance.bids)
    sellers = sorted(by_seller)
    rng.shuffle(sellers)
    for seller in sellers:
        if coverage.satisfied:
            break
        bids = list(by_seller[seller])
        rng.shuffle(bids)
        for bid in bids:
            if coverage.utility_of(bid) > 0:
                coverage.apply(bid)
                winners.append(bid)
                break
    if not coverage.satisfied:
        raise InfeasibleInstanceError(
            f"random selection could not cover {coverage.unmet} demand units"
        )
    return outcome_from_selection(
        instance,
        tuple(winners),
        mechanism="random",
        payment_rule="pay-as-bid",
    )


def __getattr__(name: str):
    if name == "RandomSelectionResult":
        warnings.warn(
            "RandomSelectionResult is deprecated; run_random_selection now "
            "returns the uniform repro.core.outcomes.AuctionOutcome",
            DeprecationWarning,
            stacklevel=2,
        )
        return AuctionOutcome
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
