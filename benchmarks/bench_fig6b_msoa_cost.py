"""Figure 6(b): MSOA social cost, total payment, and offline optimum.

Regenerates the online cost anatomy over the microservice sweep per
request level and benchmarks a full MSOA horizon end to end.

Paper shape targets: payment ≥ online social cost ≥ offline optimum;
the 200-request series sits above the 100-request series.
"""

from repro.core.msoa import run_msoa
from repro.core.ssam import PaymentRule
from repro.experiments.figures import fig6b
from repro.experiments.runner import build_horizon_scenario
from repro.workload.scenarios import PAPER_DEFAULTS


def test_fig6b_online_cost_anatomy(benchmark, sweep_config, show):
    table = fig6b(sweep_config)
    show(table)
    by_count: dict[int, dict[int, float]] = {}
    for row in table.rows:
        assert row["total_payment"] >= row["social_cost"] - 1e-9
        assert row["social_cost"] >= row["offline_optimal"] - 1e-6
        by_count.setdefault(row["microservices"], {})[row["requests"]] = row[
            "social_cost"
        ]
    for costs in by_count.values():
        assert costs[200] > costs[100]

    scenario = build_horizon_scenario(
        PAPER_DEFAULTS, sweep_config.seeds[0], estimation_sigma=0.0
    )
    benchmark(
        run_msoa,
        scenario.rounds_true,
        scenario.capacities,
        payment_rule=PaymentRule.ITERATION_RUNNER_UP,
        on_infeasible="best_effort",
    )
