"""Trace-driven workload: MSOA under diurnal, role-rotating demand.

The paper evaluates "with real-world data traces"; this bench runs the
synthetic stand-in (staggered diurnal traces, see DESIGN.md's
substitution table): the same microservice sells in its trough and buys
at its peak.  Reports the online-vs-offline ratio and the spark-line of
per-round demand and cost so the diurnal shape is visible in the output.
"""

import numpy as np

from repro.analysis.visualize import series_panel
from repro.baselines.offline import run_offline_optimal
from repro.core.msoa import run_msoa
from repro.core.ssam import PaymentRule
from repro.workload.trace_driven import (
    TraceDrivenConfig,
    generate_trace_driven_horizon,
)


def test_trace_driven_online_sharing(benchmark, sweep_config, show, capsys):
    rng = np.random.default_rng(sweep_config.seeds[0])
    rounds, capacities = generate_trace_driven_horizon(
        TraceDrivenConfig(n_microservices=20, rounds=12), rng
    )
    outcome = run_msoa(
        rounds,
        capacities,
        payment_rule=PaymentRule.ITERATION_RUNNER_UP,
        on_infeasible="best_effort",
    )
    offline = run_offline_optimal(rounds, capacities)

    demand_series = [float(r.total_demand) for r in rounds]
    cost_series = [r.social_cost for r in outcome.rounds]
    with capsys.disabled():
        print("\nTrace-driven horizon (12 rounds, 20 microservices)")
        print(series_panel(
            {"demand": demand_series, "cost": cost_series},
            x_label="round",
        ))
        if offline.social_cost > 0:
            print(f"online/offline ratio: "
                  f"{outcome.social_cost / offline.social_cost:.3f}\n")

    outcome.verify_capacities()
    if offline.social_cost > 0:
        assert outcome.social_cost >= offline.social_cost - 1e-6

    benchmark(
        run_msoa,
        rounds,
        capacities,
        payment_rule=PaymentRule.ITERATION_RUNNER_UP,
        on_infeasible="best_effort",
    )
