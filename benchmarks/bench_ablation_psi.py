"""Ablation: MSOA's multiplicative ψ scaling vs a scaling-free greedy.

DESIGN.md design decision 3: the ψ update (Algorithm 2 line 11) is what
protects sellers' future participation.  This bench runs the same horizon
(a) with the normal update and (b) with ψ effectively frozen at 0 (α→∞),
on a market engineered so that cheap sellers are scarce: the scaling-free
variant burns the cheap capacity early and pays more in later rounds.

Reported: total social cost of both variants plus the late-round premium
the scaling avoids.
"""

import numpy as np

from repro.analysis.reporting import ResultTable
from repro.core.bids import Bid
from repro.core.msoa import run_msoa
from repro.core.ssam import PaymentRule
from repro.core.wsp import WSPInstance


def _scarce_market_horizon(rounds: int, rng: np.random.Generator):
    """Cheap sellers with tight capacity; expensive sellers unlimited.

    Every round, one buyer needs two units; two cheap sellers (capacity
    enough for only half the horizon) compete with two expensive ones.
    """
    buyers = {0: 1, 1: 1}
    horizon = []
    for _ in range(rounds):
        bids = [
            Bid(seller=100, index=0, covered=frozenset({0, 1}),
                price=float(rng.uniform(8.0, 10.0))),
            Bid(seller=101, index=0, covered=frozenset({0, 1}),
                price=float(rng.uniform(8.0, 10.0))),
            Bid(seller=200, index=0, covered=frozenset({0, 1}),
                price=float(rng.uniform(28.0, 32.0))),
            Bid(seller=201, index=0, covered=frozenset({0, 1}),
                price=float(rng.uniform(28.0, 32.0))),
        ]
        horizon.append(WSPInstance.from_bids(bids, buyers, price_ceiling=50.0))
    # Cheap capacity covers only half the horizon's winning volume.
    capacities = {100: rounds, 101: rounds, 200: 10 * rounds, 201: 10 * rounds}
    return horizon, capacities


def test_ablation_psi_scaling(benchmark, show):
    rng = np.random.default_rng(42)
    horizon, capacities = _scarce_market_horizon(rounds=10, rng=rng)

    def run(alpha):
        return run_msoa(
            horizon,
            capacities,
            alpha=alpha,
            payment_rule=PaymentRule.ITERATION_RUNNER_UP,
            on_infeasible="best_effort",
        )

    scaled = run(alpha=None)  # normal MSOA (auto α)
    frozen = run(alpha=1e12)  # ψ ≈ 0 forever: no scarcity pricing

    table = ResultTable(
        title="Ablation: ψ price scaling on a scarce-cheap-seller market",
        columns=["variant", "social_cost", "late_half_cost"],
    )
    half = len(horizon) // 2
    for name, outcome in (("MSOA (ψ scaling)", scaled), ("ψ frozen", frozen)):
        table.add_row(
            variant=name,
            social_cost=outcome.social_cost,
            late_half_cost=sum(
                r.social_cost for r in outcome.rounds[half:]
            ),
        )
    show(table)
    # The scaling spreads cheap capacity across the horizon, so its
    # late-round spending is no worse than the frozen variant's.
    assert scaled.rounds[-1].social_cost <= frozen.rounds[-1].social_cost + 1e-9
    benchmark(run, None)
