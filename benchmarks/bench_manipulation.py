"""Manipulation experiment: what do strategic sellers achieve?

Theorem 4 is about *unilateral* deviations — no single seller gains by
lying.  This bench looks at the aggregate picture when the whole
population marks up: a uniform markup rescales every greedy ratio equally
and leaves the allocation (hence the true social cost) unchanged, while a
demand-aware opportunistic markup distorts the allocation and inflates
what the platform pays.  The unilateral-deviation guarantee itself is
verified per-seller on top.
"""

import numpy as np

from repro.analysis.economics import probe_truthfulness
from repro.analysis.reporting import ResultTable
from repro.core.ssam import run_ssam
from repro.experiments.runner import build_single_round
from repro.workload.scenarios import PAPER_DEFAULTS


def _marked_up(instance, factor_fn):
    """Re-announce every bid at ``factor_fn(bid) × cost`` (cost pinned)."""
    bids = tuple(
        bid.with_price(bid.cost * factor_fn(bid)) for bid in instance.bids
    )
    from repro.core.wsp import WSPInstance

    return WSPInstance(
        bids=bids, demand=instance.demand, price_ceiling=instance.price_ceiling
    )


def test_manipulation_landscape(benchmark, sweep_config, show):
    instance = build_single_round(PAPER_DEFAULTS, sweep_config.seeds[0])
    truthful = run_ssam(instance)

    uniform = run_ssam(_marked_up(instance, lambda bid: 1.5))
    rng = np.random.default_rng(sweep_config.seeds[0])
    factors = {bid.key: float(rng.uniform(1.0, 2.0)) for bid in instance.bids}
    skewed = run_ssam(_marked_up(instance, lambda bid: factors[bid.key]))

    def true_cost(outcome):
        return sum(w.bid.cost for w in outcome.winners)

    table = ResultTable(
        title="Population-level manipulation vs truthful bidding",
        columns=["population", "true_social_cost", "platform_payment"],
        precision=2,
    )
    table.add_row(population="truthful",
                  true_social_cost=true_cost(truthful),
                  platform_payment=truthful.total_payment)
    table.add_row(population="uniform 1.5x markup",
                  true_social_cost=true_cost(uniform),
                  platform_payment=uniform.total_payment)
    table.add_row(population="skewed U[1,2]x markup",
                  true_social_cost=true_cost(skewed),
                  platform_payment=skewed.total_payment)
    show(table)

    # A uniform markup rescales all ratios equally: same winners.
    assert uniform.winner_keys == truthful.winner_keys
    assert true_cost(uniform) == true_cost(truthful)
    # Skewed markups distort the allocation in either direction (the
    # greedy is not optimal, so a lucky distortion can even lower true
    # cost); the robust fact is that the optimum is a floor for all.
    from repro.solvers.milp import solve_wsp_optimal

    floor = solve_wsp_optimal(instance).objective
    assert true_cost(skewed) >= floor - 1e-9
    assert true_cost(truthful) >= floor - 1e-9

    # And the unilateral guarantee itself (Theorem 4): no single seller
    # can profit by deviating from truth while others stay honest.
    deviations = probe_truthfulness(
        instance, rng=np.random.default_rng(1), deviations_per_bid=1
    )
    assert deviations
    assert all(d.gain <= 1e-7 for d in deviations)

    benchmark(run_ssam, instance)
