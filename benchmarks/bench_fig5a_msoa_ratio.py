"""Figure 5(a): MSOA performance ratio and the DA/RC/OA variants.

Regenerates the four variants' ratio-to-offline-optimum series over the
microservice sweep and benchmarks one full online round (scaled pricing +
SSAM + ψ update).

Paper shape targets: all variants ≥ 1 (online never beats clairvoyant);
the demand-aware variant (MSOA-DA) achieves the lowest ratio of the
single-knob variants; plain MSOA pays for its estimation error.
"""

from repro.core.msoa import MultiStageOnlineAuction
from repro.core.ssam import PaymentRule
from repro.experiments.figures import fig5a
from repro.experiments.runner import build_horizon_scenario
from repro.workload.scenarios import PAPER_DEFAULTS


def test_fig5a_online_ratio_variants(benchmark, sweep_config, show):
    table = fig5a(sweep_config)
    show(table)
    for row in table.rows:
        for name in ("MSOA", "MSOA-DA", "MSOA-RC", "MSOA-OA"):
            assert row[name] >= 1.0 - 0.05
        assert row["MSOA-DA"] <= row["MSOA"] + 0.05

    scenario = build_horizon_scenario(
        PAPER_DEFAULTS, sweep_config.seeds[0], estimation_sigma=0.0
    )

    def one_online_round():
        auction = MultiStageOnlineAuction(
            scenario.capacities,
            payment_rule=PaymentRule.ITERATION_RUNNER_UP,
            on_infeasible="best_effort",
        )
        return auction.process_round(scenario.rounds_true[0])

    benchmark(one_online_round)
