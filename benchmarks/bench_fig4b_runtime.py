"""Figure 4(b): SSAM running time vs market size.

Regenerates the runtime table (per payment rule) and uses
pytest-benchmark to time the paper-literal mechanism at the largest sweep
size, asserting the paper's "< 100 ms even with large data size" claim
for the runner-up payment rule.
"""

import dataclasses

from repro.core.ssam import PaymentRule, run_ssam
from repro.experiments.figures import fig4b
from repro.experiments.runner import build_single_round
from repro.workload.scenarios import PAPER_DEFAULTS


def test_fig4b_runtime(benchmark, sweep_config, show):
    table = fig4b(sweep_config, repeats=3)
    show(table)
    for row in table.rows:
        assert row["runner_up_ms"] < 100.0, (
            "paper claims sub-100ms rounds at evaluation scale"
        )
    largest = dataclasses.replace(
        PAPER_DEFAULTS,
        n_microservices=max(sweep_config.microservice_counts),
    )
    instance = build_single_round(largest, sweep_config.seeds[0])
    result = benchmark(
        run_ssam, instance, payment_rule=PaymentRule.ITERATION_RUNNER_UP
    )
    result.verify()
