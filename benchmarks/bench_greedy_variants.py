"""Ablation: SSAM's density rule vs simpler greedy ranking keys.

Clears per-unit-priced markets with three selection rules — SSAM's
price-per-marginal-unit density key, cheapest-whole-price-first, and
largest-coverage-first — and reports mean social cost against the
optimum.  Expected shape: density ≤ both simplifications, with
cheapest-price the worst (it buys coverage retail, one cheap unit at a
time).
"""

import numpy as np

from repro.analysis.reporting import ResultTable
from repro.baselines.greedy_variants import VARIANT_KEYS, run_greedy_variant
from repro.core.bids import Bid
from repro.core.wsp import WSPInstance
from repro.solvers.milp import solve_wsp_optimal
from repro.workload.bidgen import MarketConfig, generate_round


def _per_unit_priced(base, rng):
    return WSPInstance(
        bids=tuple(
            Bid(
                seller=b.seller,
                index=b.index,
                covered=b.covered,
                price=float(rng.uniform(10.0, 35.0)) * b.size,
            )
            for b in base.bids
        ),
        demand=base.demand,
        price_ceiling=None,
    )


def test_greedy_ranking_ablation(benchmark, sweep_config, show):
    rng = np.random.default_rng(sweep_config.seeds[0])
    totals = {name: [] for name in VARIANT_KEYS}
    optima = []
    for _ in range(10):
        instance = _per_unit_priced(
            generate_round(MarketConfig(n_sellers=20, n_buyers=6), rng), rng
        )
        optima.append(solve_wsp_optimal(instance).objective)
        for name in VARIANT_KEYS:
            totals[name].append(run_greedy_variant(instance, name).social_cost)

    table = ResultTable(
        title="Ablation: greedy ranking keys (mean over 10 markets)",
        columns=["rule", "mean_social_cost", "vs_optimum"],
    )
    mean_opt = float(np.mean(optima))
    for name in ("density", "largest_coverage", "cheapest_price"):
        mean_cost = float(np.mean(totals[name]))
        table.add_row(
            rule=name,
            mean_social_cost=mean_cost,
            vs_optimum=mean_cost / mean_opt,
        )
    show(table)

    density = float(np.mean(totals["density"]))
    assert density <= float(np.mean(totals["cheapest_price"])) + 1e-9
    assert density <= float(np.mean(totals["largest_coverage"])) + 1e-9

    instance = _per_unit_priced(
        generate_round(MarketConfig(n_sellers=20, n_buyers=6), rng), rng
    )
    benchmark(run_greedy_variant, instance, "density")
