"""Shared configuration for the benchmark harness.

Each ``bench_*`` module regenerates one panel of the paper's evaluation
(Figures 3–6) and prints the series as a text table, while pytest-benchmark
times the mechanism kernel that panel exercises.

By default the benches run the QUICK sweep (reduced axes, 2 seeds) so the
whole harness finishes in minutes; set ``REPRO_FULL_SWEEP=1`` to run the
paper-scale FULL sweep.
"""

import os

import pytest

from repro.experiments.config import FULL, QUICK, ExperimentConfig


@pytest.fixture(scope="session")
def sweep_config() -> ExperimentConfig:
    """QUICK by default; FULL when REPRO_FULL_SWEEP=1."""
    return FULL if os.environ.get("REPRO_FULL_SWEEP") == "1" else QUICK


@pytest.fixture()
def show(capsys):
    """Print a result table to the real terminal (outside capture)."""

    def _show(table):
        with capsys.disabled():
            print("\n" + table.render() + "\n")

    return _show
