"""Figure 3(a): SSAM performance ratio vs number of microservices.

Regenerates the panel's series (ratio per microservice count for J ∈
{1, 2} alongside the W·Ξ bound) and benchmarks the SSAM kernel on the
paper-default market.

Paper shape targets (EXPERIMENTS.md): the J=1 curve stays ≈ 1; the J=2
curve sits above it; every measurement respects the Theorem-3 bound.
"""

from repro.core.ssam import run_ssam
from repro.experiments.figures import fig3a
from repro.experiments.runner import build_single_round
from repro.workload.scenarios import PAPER_DEFAULTS


def test_fig3a_ssam_performance_ratio(benchmark, sweep_config, show):
    table = fig3a(sweep_config)
    show(table)
    # Shape assertions: within bound, J=1 near-optimal.
    for row in table.rows:
        assert row["ratio"] <= row["bound_WXi"] + 1e-9
        if row["bids_per_seller"] == 1:
            assert row["ratio"] <= 1.5
    instance = build_single_round(PAPER_DEFAULTS, sweep_config.seeds[0])
    benchmark(run_ssam, instance)
