"""Ablation: local-only vs cross-cloud resource sharing.

The paper confines sharing to co-located microservices.  This bench
quantifies what that restriction costs: the same deployments are cleared
as (a) local-only markets (the paper's rule), (b) cross-cloud markets
with a latency surcharge, and (c) cross-cloud with free backhaul (the
upper bound on what remote supply can buy).  Measured shape: free remote
supply never raises the optimum (~5-10% cheaper on these deployments);
with the surcharge the market clears at roughly local-only cost — remote
arbitrage is neutralized when local supply is adequate, and the remote
option only pays off where a local market would be thin or infeasible.
"""

import numpy as np

from repro.analysis.reporting import ResultTable
from repro.core.ssam import run_ssam
from repro.edge.cross_cloud import CrossCloudConfig, build_cross_cloud_market
from repro.edge.network import build_backhaul
from repro.errors import InfeasibleInstanceError
from repro.solvers.milp import solve_wsp_optimal


def _deployment(rng, n_clouds=4, sellers_per_cloud=3, buyers_per_cloud=2):
    seller_clouds, seller_costs, buyer_clouds, demand = {}, {}, {}, {}
    sid, buid = 100, 0
    for cloud in range(n_clouds):
        for _ in range(sellers_per_cloud):
            seller_clouds[sid] = cloud
            seller_costs[sid] = float(rng.uniform(10.0, 35.0))
            sid += 1
        for _ in range(buyers_per_cloud):
            buyer_clouds[buid] = cloud
            demand[buid] = int(rng.integers(1, 3))
            buid += 1
    return seller_clouds, seller_costs, buyer_clouds, demand


def test_cross_cloud_ablation(benchmark, sweep_config, show):
    rng = np.random.default_rng(sweep_config.seeds[0])
    network = build_backhaul(np.random.default_rng(0), n_clouds=4)
    table = ResultTable(
        title="Ablation: local-only vs cross-cloud sharing (mean optimum)",
        columns=["market", "mean_optimal_cost", "feasible_rate"],
    )
    configs = {
        "local-only (paper)": CrossCloudConfig(local_only=True),
        "cross-cloud, surcharge 2.0/ms": CrossCloudConfig(latency_penalty=2.0),
        "cross-cloud, free backhaul": CrossCloudConfig(latency_penalty=0.0),
    }
    costs: dict[str, list[float]] = {name: [] for name in configs}
    feasible: dict[str, int] = {name: 0 for name in configs}
    trials = 8
    for trial in range(trials):
        deployment = _deployment(np.random.default_rng(1000 + trial))
        for name, config in configs.items():
            instance = build_cross_cloud_market(
                *deployment, network, config,
                np.random.default_rng(trial), price_ceiling=500.0,
            )
            try:
                costs[name].append(solve_wsp_optimal(instance).objective)
                feasible[name] += 1
            except InfeasibleInstanceError:
                continue
    for name in configs:
        table.add_row(
            market=name,
            mean_optimal_cost=(
                float(np.mean(costs[name])) if costs[name] else None
            ),
            feasible_rate=feasible[name] / trials,
        )
    show(table)

    # Cross-cloud supply clears at least as many markets as local-only.
    assert feasible["cross-cloud, free backhaul"] >= feasible["local-only (paper)"]

    deployment = _deployment(np.random.default_rng(1000))
    instance = build_cross_cloud_market(
        *deployment, network, CrossCloudConfig(latency_penalty=2.0),
        np.random.default_rng(0), price_ceiling=500.0,
    )
    benchmark(run_ssam, instance)
