"""Figure 6(a): MSOA ratio vs number of rounds T and bids-per-user J.

Regenerates the T × J ratio grid and benchmarks the clairvoyant offline
MILP (the panel's denominator), whose cost dominates this sweep.

Paper shape targets: wider bid menus (larger J) worsen the ratio on
average; the ratio does not improve as the horizon lengthens.
"""

import numpy as np

from repro.baselines.offline import run_offline_optimal
from repro.experiments.figures import fig6a
from repro.experiments.runner import build_horizon_scenario
from repro.workload.scenarios import PAPER_DEFAULTS


def test_fig6a_rounds_and_bids(benchmark, sweep_config, show):
    table = fig6a(sweep_config)
    show(table)
    for row in table.rows:
        assert row["ratio"] >= 1.0 - 0.05
    # Shape: average ratio with the largest J >= average with J = 1.
    j_values = sorted({row["bids_J"] for row in table.rows})
    if len(j_values) > 1:
        means = {
            j: np.mean([r["ratio"] for r in table.rows if r["bids_J"] == j])
            for j in j_values
        }
        assert means[j_values[-1]] >= means[j_values[0]] - 0.10

    scenario = build_horizon_scenario(
        PAPER_DEFAULTS, sweep_config.seeds[0], estimation_sigma=0.0
    )
    benchmark(
        run_offline_optimal, scenario.rounds_true, scenario.capacities
    )
