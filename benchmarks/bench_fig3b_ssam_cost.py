"""Figure 3(b): SSAM social cost, total payment, and exact optimum.

Regenerates the panel's three series per request level (100 vs 200 user
requests) and benchmarks the full SSAM-with-payments round.

Paper shape targets: social cost grows with the number of microservices;
payment ≥ social cost ≥ optimum; the 200-request series sits above the
100-request series.
"""

from repro.core.ssam import PaymentRule, run_ssam
from repro.experiments.figures import fig3b
from repro.experiments.runner import build_single_round
from repro.workload.scenarios import PAPER_DEFAULTS


def test_fig3b_cost_payment_optimum(benchmark, sweep_config, show):
    table = fig3b(sweep_config)
    show(table)
    for row in table.rows:
        assert row["total_payment"] >= row["social_cost"] - 1e-9
        assert row["social_cost"] >= row["optimal_cost"] - 1e-9
    by_count: dict[int, dict[int, float]] = {}
    for row in table.rows:
        by_count.setdefault(row["microservices"], {})[row["requests"]] = row[
            "social_cost"
        ]
    for costs in by_count.values():
        assert costs[200] > costs[100]
    instance = build_single_round(PAPER_DEFAULTS, sweep_config.seeds[0])
    benchmark(run_ssam, instance, payment_rule=PaymentRule.CRITICAL_RERUN)
