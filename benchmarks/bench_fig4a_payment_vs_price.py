"""Figure 4(a): per-winner payment vs actual price (individual rationality).

Regenerates the scatter (one row per winning bid) and benchmarks the
critical-payment computation in isolation.

Paper shape target: every payment bar sits at or above its price bar.
"""

from repro.core.ssam import PaymentRule, run_ssam
from repro.experiments.figures import fig4a
from repro.experiments.runner import build_single_round
from repro.workload.scenarios import PAPER_DEFAULTS


def test_fig4a_individual_rationality(benchmark, sweep_config, show):
    table = fig4a(sweep_config)
    show(table)
    assert table.rows, "expected at least one winner"
    for row in table.rows:
        assert row["payment"] >= row["price"] - 1e-9
        assert row["payment_covers_price"] is True

    instance = build_single_round(PAPER_DEFAULTS, sweep_config.seeds[0])

    def payments_only():
        outcome = run_ssam(instance, payment_rule=PaymentRule.CRITICAL_RERUN)
        return outcome.total_payment

    benchmark(payments_only)
