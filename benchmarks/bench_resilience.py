"""Resilience sweep: seller-default probability vs. cost and coverage.

Not a paper panel — the paper assumes every winning seller delivers.  This
bench measures what that assumption is worth: the same seeded horizon runs
under growing per-win default probabilities, with the default
:class:`repro.faults.ResiliencePolicy` re-auctioning the residual demand
after each default.  Reported per (mechanism, probability): social cost,
demand coverage, recovered vs. abandoned units, degraded rounds.

Expected shape: the ``p_default = 0`` row is bit-identical to a fault-free
run (the null-plan guard); social cost rises with the default rate because
re-auctions pay for replacement coverage at relaxed ceilings; coverage
stays near 1 while retries can still find substitute sellers and dips only
when the market runs out of them (abandoned > 0).
"""

import numpy as np

from repro.core.registry import make_online
from repro.experiments.resilience import (
    DEFAULT_RESILIENCE_MECHANISMS,
    run_resilience_sweep,
)
from repro.faults import FaultPlan, SellerDefault
from repro.workload.bidgen import MarketConfig, generate_horizon

PROBABILITIES = (0.0, 0.1, 0.2, 0.3, 0.4)


def test_resilience_sweep(benchmark, sweep_config, show):
    rounds = sweep_config.horizon_rounds
    seed = sweep_config.seeds[0]
    table = run_resilience_sweep(
        mechanisms=DEFAULT_RESILIENCE_MECHANISMS,
        probabilities=PROBABILITIES,
        rounds=rounds,
        seed=seed,
    )
    show(table)

    by_mechanism = {}
    for row in table.rows:
        by_mechanism.setdefault(row["mechanism"], []).append(row)
    for name, rows in by_mechanism.items():
        # Null plan == fault-free run: full coverage, nothing injected.
        reference = rows[0]
        assert reference["p_default"] == 0.0
        assert reference["coverage"] == 1.0, name
        assert reference["fault_events"] == 0, name
        for row in rows[1:]:
            # Faults fire at every positive probability on this horizon,
            # and recovery never over-claims: served = demanded - abandoned.
            assert row["fault_events"] > 0, name
            assert 0.0 <= row["coverage"] <= 1.0, name
            assert row["recovered"] >= 0 and row["abandoned"] >= 0, name
            # While every default is recovered, replacement coverage is
            # never cheaper than first-choice coverage: the unfaulted run
            # greedily took the best bids first.  (Once units are
            # abandoned the comparison is apples-to-oranges.)
            if row["coverage"] == 1.0:
                assert row["social_cost"] >= reference["social_cost"] - 1e-9, name

    # Time the faulted MSOA horizon (injection + retry re-auctions).
    rng = np.random.default_rng(seed)
    horizon, capacities = generate_horizon(MarketConfig(), rng, rounds=rounds)
    plan = FaultPlan(seed=0, seller_defaults=(SellerDefault(probability=0.3),))

    def faulted_msoa():
        mechanism = make_online(
            "msoa", capacities, on_infeasible="skip", faults=plan
        )
        for instance in horizon:
            mechanism.process_round(instance)
        return mechanism.finalize()

    benchmark(faulted_msoa)
