"""Ablation: coverage vs payment budget (Section IV's stopping rule 𝒲).

Not a paper panel — the evaluation never binds the budget — but the
mechanism text defines it, so this bench characterizes the trade-off:
sweeping the payout cap from 10% to 120% of SSAM's unconstrained payment
and reporting the fraction of demand served at each level.  Coverage must
be monotone in the budget and reach 1.0 once the cap clears the
unconstrained payment.
"""

from repro.analysis.reporting import ResultTable
from repro.core.budgeted import run_budgeted_ssam
from repro.core.ssam import run_ssam
from repro.experiments.runner import build_single_round
from repro.workload.scenarios import PAPER_DEFAULTS


def test_ablation_budget_coverage(benchmark, sweep_config, show):
    instance = build_single_round(PAPER_DEFAULTS, sweep_config.seeds[0])
    unconstrained = run_ssam(instance)
    full_payment = unconstrained.total_payment

    table = ResultTable(
        title="Ablation: demand coverage vs payment budget",
        columns=["budget_fraction", "budget", "spent", "coverage", "winners"],
    )
    coverages = []
    for fraction in (0.1, 0.25, 0.5, 0.75, 1.0, 1.2):
        result = run_budgeted_ssam(instance, budget=full_payment * fraction)
        coverages.append(result.coverage_fraction)
        table.add_row(
            budget_fraction=fraction,
            budget=full_payment * fraction,
            spent=result.budget_spent,
            coverage=result.coverage_fraction,
            winners=len(result.outcome.winners),
        )
    show(table)
    assert all(b >= a - 1e-9 for a, b in zip(coverages, coverages[1:])), (
        "coverage must be monotone in the budget"
    )
    assert coverages[-1] == 1.0

    benchmark(run_budgeted_ssam, instance, full_payment * 0.5)
