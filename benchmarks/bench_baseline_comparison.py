"""Cross-mechanism comparison: SSAM vs the baseline band.

Not a paper panel, but the context the paper's introduction argues from:
the truthful auction against posted prices (the intro's strawman), random
selection (the floor), pay-as-bid (the payment-rule ablation of DESIGN.md
decision 2), and VCG (the exact truthful gold standard).

Reported per mechanism: social cost, platform payment, and whether the
market always cleared.  Expected ordering on social cost:
VCG = optimum ≤ SSAM ≤ random, with posted-price payments above SSAM's
when the price is set high enough to clear.
"""

import numpy as np

from repro.analysis.reporting import ResultTable
from repro.baselines.fixed_pricing import run_posted_price
from repro.baselines.pay_as_bid import run_pay_as_bid
from repro.baselines.random_mechanism import run_random_selection
from repro.baselines.vcg import run_vcg
from repro.core.ssam import run_ssam
from repro.experiments.runner import build_single_round
from repro.workload.scenarios import PAPER_DEFAULTS


def test_baseline_comparison(benchmark, sweep_config, show):
    table = ResultTable(
        title="Mechanism comparison on the paper-default market",
        columns=["mechanism", "social_cost", "total_payment", "cleared"],
        precision=2,
    )
    rng = np.random.default_rng(sweep_config.seeds[0])
    instance = build_single_round(PAPER_DEFAULTS, sweep_config.seeds[0])

    ssam = run_ssam(instance)
    vcg = run_vcg(instance)
    pab = run_pay_as_bid(instance)
    rnd = run_random_selection(instance, rng)
    # Post the market-clearing price (top of the paper's U[10,35] range).
    posted = run_posted_price(instance, unit_price=35.0)

    table.add_row(mechanism="VCG (optimal)", social_cost=vcg.social_cost,
                  total_payment=vcg.total_payment, cleared=True)
    table.add_row(mechanism="SSAM", social_cost=ssam.social_cost,
                  total_payment=ssam.total_payment, cleared=True)
    table.add_row(mechanism="pay-as-bid greedy", social_cost=pab.social_cost,
                  total_payment=pab.total_payment, cleared=True)
    table.add_row(mechanism="random cover", social_cost=rnd.social_cost,
                  total_payment=rnd.total_payment, cleared=True)
    table.add_row(mechanism="posted price (35)", social_cost=posted.social_cost,
                  total_payment=posted.total_payment,
                  cleared=posted.satisfied)
    show(table)

    assert vcg.social_cost <= ssam.social_cost + 1e-9
    assert ssam.social_cost <= rnd.social_cost + 1e-9
    assert pab.social_cost == ssam.social_cost
    assert pab.total_payment <= ssam.total_payment + 1e-9

    benchmark(run_vcg, instance)
