"""Theorem-7 empirics: competitive ratio vs the capacity margin β.

Theorem 7 bounds MSOA's competitive ratio by αβ/(β−1): the guarantee
*improves* as sellers' long-run capacities Θ grow relative to their bid
sizes.  This bench sweeps the capacity range from tight to generous,
measures β, the theoretical bound, and the realized online/offline
ratio, and checks the theorem's direction: the bound is monotone
decreasing in β and the measured ratio always sits below it.
"""

import numpy as np

from repro.analysis.reporting import ResultTable
from repro.baselines.offline import run_offline_optimal
from repro.core.msoa import run_msoa
from repro.core.ssam import PaymentRule
from repro.errors import InfeasibleInstanceError
from repro.workload.bidgen import (
    MarketConfig,
    ensure_online_feasible,
    generate_horizon,
)


def _measure(capacity_range, seed):
    rng = np.random.default_rng(seed)
    config = MarketConfig(n_sellers=14, n_buyers=5)
    horizon, capacities = generate_horizon(
        config, rng, rounds=8, capacity_range=capacity_range
    )
    capacities = ensure_online_feasible(horizon, capacities)
    try:
        outcome = run_msoa(
            horizon,
            capacities,
            payment_rule=PaymentRule.ITERATION_RUNNER_UP,
            on_infeasible="raise",
        )
    except InfeasibleInstanceError:
        return None
    offline = run_offline_optimal(horizon, capacities)
    if offline.social_cost <= 0:
        return None
    return (
        outcome.beta,
        outcome.competitive_bound,
        outcome.social_cost / offline.social_cost,
    )


def test_beta_sensitivity(benchmark, sweep_config, show):
    table = ResultTable(
        title="Theorem 7: competitive ratio vs capacity margin beta",
        columns=["capacity_range", "beta", "bound", "measured_ratio"],
    )
    bounds = []
    for capacity_range in ((4, 8), (8, 16), (16, 32), (32, 64)):
        rows = []
        for seed in sweep_config.seeds[:2]:
            result = _measure(capacity_range, seed)
            if result is not None:
                rows.append(result)
        if not rows:
            continue
        beta = float(np.mean([r[0] for r in rows]))
        bound = float(np.mean([r[1] for r in rows]))
        ratio = float(np.mean([r[2] for r in rows]))
        bounds.append(bound)
        table.add_row(
            capacity_range=str(capacity_range),
            beta=beta,
            bound=bound,
            measured_ratio=ratio,
        )
        assert ratio <= bound + 1e-6, "Theorem 7 violated"
    show(table)
    # The theoretical guarantee improves (bound shrinks) as beta grows.
    assert bounds == sorted(bounds, reverse=True) or len(bounds) < 2

    benchmark(_measure, (16, 32), sweep_config.seeds[0])
